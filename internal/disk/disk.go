// Package disk models the paging device backing the simulated kernel.
//
// The model follows the structure of Ruemmler & Wilkes, "An Introduction to
// Disk Drive Modeling" (IEEE Computer, 1994), simplified to the three
// components that dominate a 1994-era paging disk: average seek, half-
// rotation latency, and per-byte transfer time. The defaults are calibrated
// so that one 4 KB page transfer costs ~7.66 ms, the figure implied by the
// paper's Table 3 (82485.5 ms − 4016.5 ms over 10240 page-ins).
//
// Reads are synchronous from the faulting thread's point of view (the clock
// advances by the service time); writes go through an asynchronous flush
// queue drained by scheduled completion events, mirroring how the HiPEC
// global frame manager performs page flushing on behalf of policy executors
// (§4.3.1, "I/O Handling").
package disk

import (
	"fmt"
	"time"

	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/kevent"
	"hipec/internal/simtime"
	"hipec/internal/substrate"
)

// Params describes the drive's performance characteristics.
type Params struct {
	AvgSeek    time.Duration // average seek time
	HalfRotate time.Duration // half-rotation latency
	PerByte    time.Duration // transfer time per byte
	TrackSkew  time.Duration // extra cost when crossing track boundaries on sequential runs
	SectorsSeq int           // consecutive sectors served without a fresh seek
	QueueDepth int           // max outstanding async writes before Flush blocks (0 = unlimited)
}

// DefaultParams returns parameters calibrated to the paper's testbed:
// a page (4096 B) read costs AvgSeek + HalfRotate + 4096*PerByte ≈ 7.66 ms.
func DefaultParams() Params {
	return Params{
		AvgSeek:    4 * time.Millisecond,
		HalfRotate: 2 * time.Millisecond,
		PerByte:    405 * time.Nanosecond, // ≈ 1.66 ms / 4 KB page
		TrackSkew:  500 * time.Microsecond,
		SectorsSeq: 16,
		QueueDepth: 0,
	}
}

// Stats is a snapshot of disk activity, derived from the kernel event
// spine: each Read/Write emits one typed event and every counter below is a
// view over the registry.
type Stats struct {
	Reads      int64
	Writes     int64
	BytesRead  int64
	BytesWrite int64
	ReadTime   time.Duration // total virtual time spent in synchronous reads
	WriteTime  time.Duration // total virtual service time of async writes
	SeqHits    int64         // requests served without a fresh seek
}

// Disk is the simulated paging device. It is not safe for concurrent use;
// the simulated kernel serializes on one clock.
type Disk struct {
	clock    substrate.Clock
	events   *kevent.Emitter
	params   Params
	inject   *faultinj.Plane // nil = no injection
	lastAddr int64           // last serviced block address, for sequential detection
	inflight int             // outstanding async writes
}

// New creates a disk attached to clock, emitting I/O events into events.
// A nil events builds a private spine (standalone disks, e.g. inside a
// user-level pager); the VM substrate passes its shared kernel spine.
func New(clock substrate.Clock, params Params, events *kevent.Emitter) *Disk {
	if clock.IsZero() {
		panic("disk: zero clock")
	}
	if params.PerByte <= 0 {
		panic("disk: PerByte must be positive")
	}
	if events == nil {
		events = kevent.NewEmitter(clock)
	}
	return &Disk{clock: clock, events: events, params: params, lastAddr: -1}
}

// Params returns the drive parameters.
func (d *Disk) Params() Params { return d.params }

// SetInjector attaches a fault-injection plane (nil detaches). Injected read
// failures return ErrDiskIO after charging the full service time (the drive
// worked, the transfer was bad); latency spikes add the plane's extra delay
// to reads and writes.
func (d *Disk) SetInjector(pl *faultinj.Plane) { d.inject = pl }

// Stats returns a snapshot of the counters, derived from the event spine.
func (d *Disk) Stats() Stats {
	sc := d.events.Registry().Global()
	return Stats{
		Reads:      sc.Counts[kevent.EvDiskRead],
		Writes:     sc.Counts[kevent.EvDiskWrite],
		BytesRead:  sc.Sums[kevent.EvDiskRead],
		BytesWrite: sc.Sums[kevent.EvDiskWrite],
		ReadTime:   time.Duration(sc.Auxs[kevent.EvDiskRead]),
		WriteTime:  time.Duration(sc.Auxs[kevent.EvDiskWrite]),
		SeqHits:    sc.Flags[kevent.EvDiskRead] + sc.Flags[kevent.EvDiskWrite],
	}
}

// sequential reports whether addr continues the last serviced transfer.
func (d *Disk) sequential(addr int64) bool {
	return d.lastAddr >= 0 && addr == d.lastAddr+1
}

// ServiceTime computes the service time for a transfer of size bytes at
// block address addr (addresses are in units of pages/blocks; consecutive
// addresses model sequential layout). It is a pure computation; only Read
// and Write record activity.
func (d *Disk) ServiceTime(addr int64, size int) time.Duration {
	t := time.Duration(size) * d.params.PerByte
	if d.sequential(addr) {
		// Sequential: no seek, occasionally a track skew.
		t += d.params.TrackSkew
	} else {
		t += d.params.AvgSeek + d.params.HalfRotate
	}
	return t
}

// Read performs a synchronous read of size bytes at block addr, advancing
// the virtual clock by the service time. It returns the service time and,
// when the fault-injection plane decides the transfer fails, an error
// wrapping hiperr.ErrDiskIO — the time is still charged (the arm moved, the
// data was bad), but the counters record an injected error instead of a
// completed read, and lastAddr is untouched so the failed transfer does not
// grant the next request sequential locality.
func (d *Disk) Read(addr int64, size int) (time.Duration, error) {
	if size <= 0 {
		panic(fmt.Sprintf("disk: read of %d bytes", size))
	}
	t := d.ServiceTime(addr, size)
	dec := d.inject.Decide(faultinj.DiskRead)
	if dec.Slow > 0 {
		d.events.Emit(kevent.Event{Type: kevent.EvInjectDiskSlow, Addr: addr, Aux: int64(dec.Slow)})
		t += dec.Slow
	}
	if dec.Fail {
		d.events.Emit(kevent.Event{Type: kevent.EvInjectDiskError, Addr: addr, Arg: int64(size)})
		d.clock.Sleep(t)
		return t, &hiperr.Error{Op: "disk.read", Err: fmt.Errorf("block %d: %w", addr, hiperr.ErrDiskIO)}
	}
	d.events.Emit(kevent.Event{Type: kevent.EvDiskRead, Addr: addr, Arg: int64(size), Aux: int64(t), Flag: d.sequential(addr)})
	d.lastAddr = addr
	d.clock.Sleep(t)
	return t, nil
}

// Write enqueues an asynchronous write of size bytes at block addr. The
// done callback (may be nil) fires on the event queue when the write
// completes. Write returns the scheduled completion delay.
func (d *Disk) Write(addr int64, size int, done func(now simtime.Time)) time.Duration {
	if size <= 0 {
		panic(fmt.Sprintf("disk: write of %d bytes", size))
	}
	t := d.ServiceTime(addr, size)
	if dec := d.inject.Decide(faultinj.DiskWrite); dec.Slow > 0 {
		// Writes never fail (the store write is immediate and durable;
		// the disk models timing only) but they do catch latency spikes.
		d.events.Emit(kevent.Event{Type: kevent.EvInjectDiskSlow, Addr: addr, Aux: int64(dec.Slow), Flag: true})
		t += dec.Slow
	}
	d.events.Emit(kevent.Event{Type: kevent.EvDiskWrite, Addr: addr, Arg: int64(size), Aux: int64(t), Flag: d.sequential(addr)})
	d.lastAddr = addr
	d.inflight++
	d.clock.After(t, func(now simtime.Time) {
		d.inflight--
		if done != nil {
			done(now)
		}
	})
	return t
}

// Inflight reports the number of outstanding asynchronous writes.
func (d *Disk) Inflight() int { return d.inflight }

// PageReadTime is a convenience: the cost of a cold (seek + rotate +
// transfer) read of pageSize bytes, independent of queue state.
func (d *Disk) PageReadTime(pageSize int) time.Duration {
	return d.params.AvgSeek + d.params.HalfRotate + time.Duration(pageSize)*d.params.PerByte
}

// Store is the in-memory backing store: page-granular content addressed by
// (object, offset), modeling the paging file that VM objects page to and
// from. The implementation lives in the substrate package (it is the
// simulation substrate's store backend); the alias keeps this package's
// historical surface.
type Store = substrate.MemStore

// StoreKey addresses one page of backing store.
type StoreKey = substrate.PageKey

// NewStore creates a backing store for pages of pageSize bytes. If keepData
// is false, page contents are not retained (reads return nil) but presence
// is still tracked.
func NewStore(pageSize int, keepData bool) *Store {
	return substrate.NewMemStore(pageSize, keepData)
}
