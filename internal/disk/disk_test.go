package disk

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/simtime"
	"hipec/internal/substrate"
)

func newTestDisk() (*simtime.Clock, *Disk) {
	c := simtime.NewClock()
	return c, New(substrate.Sim(c), DefaultParams(), nil)
}

func TestDefaultPageReadNear7_66ms(t *testing.T) {
	_, d := newTestDisk()
	got := d.PageReadTime(4096)
	want := 7660 * time.Microsecond
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 200*time.Microsecond {
		t.Fatalf("PageReadTime(4096) = %v, want within 200µs of %v", got, want)
	}
}

func TestReadAdvancesClock(t *testing.T) {
	c, d := newTestDisk()
	before := c.Now()
	st, _ := d.Read(100, 4096)
	if c.Now() != before.Add(st) {
		t.Fatalf("clock advanced %v, service time %v", c.Now().Sub(before), st)
	}
	if s := d.Stats(); s.Reads != 1 || s.BytesRead != 4096 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSequentialReadsAvoidSeek(t *testing.T) {
	_, d := newTestDisk()
	cold, _ := d.Read(10, 4096)
	seq, _ := d.Read(11, 4096)
	if seq >= cold {
		t.Fatalf("sequential read %v not faster than cold read %v", seq, cold)
	}
	random, _ := d.Read(500, 4096)
	if random <= seq {
		t.Fatalf("random read %v not slower than sequential %v", random, seq)
	}
	if d.Stats().SeqHits != 1 {
		t.Fatalf("SeqHits = %d, want 1", d.Stats().SeqHits)
	}
}

func TestWriteIsAsync(t *testing.T) {
	c, d := newTestDisk()
	done := false
	before := c.Now()
	delay := d.Write(42, 4096, func(simtime.Time) { done = true })
	if c.Now() != before {
		t.Fatal("Write advanced the clock synchronously")
	}
	if d.Inflight() != 1 {
		t.Fatalf("Inflight = %d, want 1", d.Inflight())
	}
	c.Advance(delay)
	if !done {
		t.Fatal("completion callback did not fire")
	}
	if d.Inflight() != 0 {
		t.Fatalf("Inflight = %d after completion, want 0", d.Inflight())
	}
}

func TestWriteNilCallback(t *testing.T) {
	c, d := newTestDisk()
	d.Write(1, 4096, nil)
	c.Advance(time.Second) // must not panic
	if d.Inflight() != 0 {
		t.Fatal("write never completed")
	}
}

func TestZeroSizePanics(t *testing.T) {
	_, d := newTestDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("Read of 0 bytes did not panic")
		}
	}()
	d.Read(0, 0)
}

func TestNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(zero clock, ...) did not panic")
		}
	}()
	New(substrate.Clock{}, DefaultParams(), nil)
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore(4096, true)
	key := StoreKey{Object: 7, Offset: 8192}
	data := []byte("hello backing store")
	if err := s.WritePage(key, data); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.ReadPage(key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("page missing after write")
	}
	if string(got[:len(data)]) != string(data) {
		t.Fatalf("data = %q, want prefix %q", got[:len(data)], data)
	}
	if len(got) != 4096 {
		t.Fatalf("page padded to %d bytes, want 4096", len(got))
	}
	if !s.Contains(key) || s.Len() != 1 {
		t.Fatal("Contains/Len mismatch")
	}
}

func TestStoreWithoutData(t *testing.T) {
	s := NewStore(4096, false)
	key := StoreKey{Object: 1, Offset: 0}
	if err := s.WritePage(key, []byte("discarded")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.ReadPage(key)
	if !ok {
		t.Fatal("presence not tracked")
	}
	if got != nil {
		t.Fatalf("data retained with keepData=false: %q", got)
	}
}

func TestStoreMissingPage(t *testing.T) {
	s := NewStore(4096, true)
	if _, ok, _ := s.ReadPage(StoreKey{Object: 9, Offset: 0}); ok {
		t.Fatal("absent page reported present")
	}
}

func TestStoreUnalignedOffsetPanics(t *testing.T) {
	s := NewStore(4096, true)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned WritePage did not panic")
		}
	}()
	s.WritePage(StoreKey{Object: 1, Offset: 100}, nil)
}

func TestStoreOversizePagePanics(t *testing.T) {
	s := NewStore(64, true)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize WritePage did not panic")
		}
	}()
	s.WritePage(StoreKey{Object: 1, Offset: 0}, make([]byte, 65))
}

// Property: service time is linear in size for cold accesses.
func TestPropertyServiceTimeMonotonicInSize(t *testing.T) {
	f := func(a, b uint16) bool {
		_, d := newTestDisk()
		sa, sb := int(a)+1, int(b)+1
		// Use distinct, non-adjacent addresses so both accesses are cold.
		ta := d.ServiceTime(1000, sa)
		tb := d.ServiceTime(5000, sb)
		if sa <= sb {
			return ta <= tb
		}
		return ta >= tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: store round-trips arbitrary page-aligned writes.
func TestPropertyStoreRoundTrip(t *testing.T) {
	f := func(obj uint64, pageIdx uint8, payload []byte) bool {
		s := NewStore(4096, true)
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		key := StoreKey{Object: obj, Offset: int64(pageIdx) * 4096}
		if err := s.WritePage(key, payload); err != nil {
			return false
		}
		got, ok, err := s.ReadPage(key)
		if !ok || err != nil {
			return false
		}
		for i, b := range payload {
			if got[i] != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadTimeAccumulates(t *testing.T) {
	_, d := newTestDisk()
	t1, _ := d.Read(1, 4096)
	t2, _ := d.Read(100, 4096)
	if d.Stats().ReadTime != t1+t2 {
		t.Fatalf("ReadTime = %v, want %v", d.Stats().ReadTime, t1+t2)
	}
}

func TestInjectedReadError(t *testing.T) {
	c, d := newTestDisk()
	pl := faultinj.NewPlane(3)
	pl.SetRule(faultinj.DiskRead, faultinj.Rule{FailEvery: 2})
	d.SetInjector(pl)

	before := c.Now()
	if _, err := d.Read(10, 4096); err != nil {
		t.Fatalf("first read failed: %v", err)
	}
	st, err := d.Read(500, 4096)
	if !errors.Is(err, hiperr.ErrDiskIO) {
		t.Fatalf("second read err = %v, want ErrDiskIO", err)
	}
	if c.Now() != before.Add(st).Add(d.ServiceTime(10, 4096)) {
		t.Error("failed read did not charge its service time")
	}
	// The failed transfer is not counted as a completed read and does not
	// update sequential state.
	if s := d.Stats(); s.Reads != 1 {
		t.Errorf("Reads = %d after one success + one injected failure, want 1", s.Reads)
	}
	if d.sequential(501) {
		t.Error("failed read granted sequential locality to its successor")
	}
}

func TestInjectedLatencySpike(t *testing.T) {
	_, d := newTestDisk()
	pl := faultinj.NewPlane(3)
	pl.SetRule(faultinj.DiskRead, faultinj.Rule{SlowRate: 1, SlowBy: 50 * time.Millisecond})
	base := d.ServiceTime(77, 4096)
	d.SetInjector(pl)
	st, err := d.Read(77, 4096)
	if err != nil {
		t.Fatalf("read failed: %v", err)
	}
	if st != base+50*time.Millisecond {
		t.Errorf("slow read service time %v, want %v", st, base+50*time.Millisecond)
	}
}
