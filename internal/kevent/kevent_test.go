package kevent

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hipec/internal/simtime"
	"hipec/internal/substrate"
)

func TestEventSpineTypeNames(t *testing.T) {
	seen := map[string]Type{}
	for ty := EvNone; ty < NumTypes; ty++ {
		name := ty.String()
		if name == "" || name == "invalid" {
			t.Fatalf("type %d has no wire name", ty)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("types %d and %d share wire name %q", prev, ty, name)
		}
		seen[name] = ty
		back, ok := TypeByName(name)
		if !ok || back != ty {
			t.Fatalf("TypeByName(%q) = %d, %t; want %d", name, back, ok, ty)
		}
	}
	if _, ok := TypeByName("no-such-event"); ok {
		t.Fatal("TypeByName accepted an unknown name")
	}
}

func TestEventSpineRegistryScopes(t *testing.T) {
	clock := simtime.NewClock()
	m := NewEmitter(substrate.Sim(clock))
	m.Emit(Event{Type: EvFault, Space: 1, Flag: true})
	m.Emit(Event{Type: EvFault, Space: 2})
	m.Emit(Event{Type: EvPageIn, Space: 1, Arg: 7, Aux: 100})
	m.Emit(Event{Type: EvFMGrant, Container: 3, Arg: 64})

	r := m.Registry()
	if got := r.Count(EvFault); got != 2 {
		t.Fatalf("global fault count = %d, want 2", got)
	}
	if got := r.Flagged(EvFault); got != 1 {
		t.Fatalf("global fault flags = %d, want 1", got)
	}
	if got := r.Sum(EvPageIn); got != 7 {
		t.Fatalf("global pagein sum = %d, want 7", got)
	}
	if got := r.Aux(EvPageIn); got != 100 {
		t.Fatalf("global pagein aux = %d, want 100", got)
	}
	if got := r.Space(1).Counts[EvFault]; got != 1 {
		t.Fatalf("space 1 fault count = %d, want 1", got)
	}
	if got := r.Space(2).Counts[EvFault]; got != 1 {
		t.Fatalf("space 2 fault count = %d, want 1", got)
	}
	if got := r.Container(3).Sums[EvFMGrant]; got != 64 {
		t.Fatalf("container 3 grant sum = %d, want 64", got)
	}
	// Unknown scopes share the zero block.
	if sc := r.Space(99); sc.Counts[EvFault] != 0 {
		t.Fatal("unknown space reported events")
	}
	if sc := r.Container(0); sc.Counts[EvFMGrant] != 0 {
		t.Fatal("container 0 must be the zero block")
	}
}

func TestEventSpineEmitterStampsAndFansOut(t *testing.T) {
	clock := simtime.NewClock()
	m := NewEmitter(substrate.Sim(clock))
	var log Log
	var n Counting
	m.Attach(&log)
	m.Attach(&n)
	clock.Sleep(5 * time.Microsecond)
	m.Emit(Event{Type: EvHit, Space: 1})
	if n.N != 1 || len(log.Events) != 1 {
		t.Fatalf("fan-out missed a sink: counting=%d log=%d", n.N, len(log.Events))
	}
	if got := log.Events[0].Time; got != simtime.Time(5000) {
		t.Fatalf("event time = %v, want 5000ns", got)
	}
	m.Detach(&n)
	m.Emit(Event{Type: EvHit, Space: 1})
	if n.N != 1 {
		t.Fatal("detached sink still received events")
	}
	if len(log.Events) != 2 {
		t.Fatal("remaining sink missed an event")
	}
}

func TestEventSpineLogRoundTrip(t *testing.T) {
	events := []Event{
		{Time: 0, Type: EvFault, Space: 1, Addr: 0x4000, Flag: true},
		{Time: 392200, Type: EvZeroFill, Space: 1, Addr: 0x4000, Arg: 3, Aux: 8192},
		{Time: 400000, Type: EvFMGrant, Container: 2, Arg: 64, Flag: true},
		{Time: 500000, Type: EvDiskWrite, Addr: 0x99, Arg: 4096, Aux: 7660000, Flag: false},
	}
	var l Log
	for _, e := range events {
		l.Emit(e)
	}
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip returned %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestEventSpineLogRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"bad header":  "# not a log\n0 0 hit 1 0 0 0 0 0\n",
		"bad seq":     LogHeader + "\n1 0 hit 1 0 0 0 0 0\n",
		"bad type":    LogHeader + "\n0 0 nosuch 1 0 0 0 0 0\n",
		"bad fields":  LogHeader + "\n0 0 hit 1 0\n",
		"bad flag":    LogHeader + "\n0 0 hit 1 0 0 0 0 2\n",
		"empty input": "",
	}
	for name, in := range cases {
		if _, err := ReadLog(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadLog accepted corrupt input", name)
		}
	}
}
