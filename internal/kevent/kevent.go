// Package kevent is the simulated kernel's typed instrumentation spine:
// every subsystem (vm fault path, pageout daemon, disk, frame manager,
// policy executor, security checker) emits fixed-layout Event records into
// one Emitter, and every consumer — the metrics Registry behind
// Kernel.Report(), the experiment harness, text traces, deterministic
// event-log capture — is a Sink over that same stream.
//
// Naming: package trace holds page-reference traces (workload inputs,
// Belady OPT); package kevent holds kernel events (instrumentation
// outputs). See DESIGN.md "Observability".
//
// The spine is engineered for the no-consumer case: with no sinks attached,
// Emit is a time stamp plus a handful of array increments in the Registry —
// no allocation, no map lookups, no formatting — so the executor's
// zero-allocation hot path (BENCH_0001) survives instrumentation.
package kevent

import (
	"hipec/internal/simtime"
	"hipec/internal/substrate"
)

// Type identifies one kind of kernel event.
type Type uint8

const (
	// EvNone is the zero Type; it is never emitted.
	EvNone Type = iota

	// VM fault path (internal/vm). Space scopes the event; Addr is the
	// faulting virtual address.
	EvHit        // resident access; Flag = write
	EvFault      // page fault entered; Flag = write
	EvPageIn     // fault served from backing store; Arg = object ID, Aux = offset
	EvZeroFill   // fault served by zero-fill; Arg = object ID, Aux = offset
	EvPageOut    // dirty page written back; Arg = object ID, Aux = offset, Flag = synchronous
	EvEviction   // resident page detached by a policy; Arg = object ID, Aux = offset
	EvBadAddress // access outside any mapped region; Addr = address

	// Default pageout daemon (internal/pageout).
	EvDaemonBalance    // balance pass started
	EvDaemonDeactivate // active -> inactive move
	EvDaemonReactivate // inactive -> active second chance
	EvDaemonReclaim    // inactive page freed
	EvDaemonFlush      // dirty page flushed during reclaim

	// Global frame manager (internal/core). Container scopes the event.
	EvFMGrant         // frames granted; Arg = frame count
	EvFMDeny          // request denied; Arg = frame count requested
	EvFMReturn        // frames returned to the machine pool; Arg = frame count
	EvFMReclaimNormal // frames recovered via ReclaimFrame events; Arg = frame count
	EvFMReclaimForced // one frame recovered by forced reclamation
	EvFMFlushExchange // Flush command exchange; Flag = asynchronous
	EvFMImplicitFlush // dirty page laundered because a policy freed it uncleaned
	EvFMLaunderStart  // async flush write scheduled
	EvFMLaunderDone   // async flush write completed, frame rejoined pool

	// Policy executor (internal/core). Container scopes the event.
	EvPolicyActivation // one event-program activation; Arg = commands interpreted, Aux = event number
	EvPolicyCommand    // one interpreted command (Trace sink only); Addr = encoded command, Arg = CC, Aux = event number, Flag = CR
	EvPolicyRequest    // Request command; Arg = frame count, Flag = denied
	EvPolicyRelease    // Release command; Arg = frames released
	EvPolicyFlush      // Flush command
	EvPolicyMigrate    // Migrate extension; Container = destination, Arg = source container ID

	// Container lifecycle (internal/core).
	EvContainerCreated // activation succeeded; Container = new ID
	EvActivationError  // vm_allocate_hipec/vm_map_hipec rejected

	// Security checker (internal/core).
	EvCheckerWakeup     // watchdog wakeup; Arg = next interval ns
	EvCheckerTimeout    // timed-out execution detected
	EvCheckerKill       // container terminated
	EvCheckerSweepError // deep-sweep consistency violation
	EvCheckerValidation // registration-time spec validation; Flag = rejected

	// Paging device (internal/disk). Addr is the block address.
	EvDiskRead  // synchronous read; Arg = bytes, Aux = service ns, Flag = sequential
	EvDiskWrite // asynchronous write queued; Arg = bytes, Aux = service ns, Flag = sequential

	// Fault injection (internal/faultinj consumers) and graceful
	// degradation.
	EvInjectDiskError  // injected disk read failure; Addr = block, Arg = bytes
	EvInjectDiskSlow   // injected disk latency spike; Addr = block, Aux = extra ns, Flag = write
	EvInjectPagerLoss  // injected pager loss; Arg = object ID, Aux = offset, Flag = data_return side
	EvInjectGrantDeny  // injected frame-grant denial; Arg = frames requested
	EvFaultRetry       // fault path retrying a failed page-in; Addr = address, Arg = attempt, Aux = backoff ns
	EvFaultAbandon     // fault path out of retry budget; Addr = address
	EvPageOutError     // page-out write-back failed, page kept dirty; Arg = object ID, Aux = offset
	EvPagerFailover    // failover pager switched to its fallback; Arg = consecutive losses
	EvContainerRevoked // container revoked, region handed back to the default policy

	// Static verifier (internal/hpl/verify via the security checker).
	EvVerifyDiag // one verifier diagnostic at registration; Arg = severity, Aux = event number, Flag = error

	// NumTypes is the number of event types; Registry arrays index by Type.
	NumTypes
)

var typeNames = [NumTypes]string{
	EvNone:              "none",
	EvHit:               "hit",
	EvFault:             "fault",
	EvPageIn:            "pagein",
	EvZeroFill:          "zerofill",
	EvPageOut:           "pageout",
	EvEviction:          "eviction",
	EvBadAddress:        "badaddr",
	EvDaemonBalance:     "daemon.balance",
	EvDaemonDeactivate:  "daemon.deactivate",
	EvDaemonReactivate:  "daemon.reactivate",
	EvDaemonReclaim:     "daemon.reclaim",
	EvDaemonFlush:       "daemon.flush",
	EvFMGrant:           "fm.grant",
	EvFMDeny:            "fm.deny",
	EvFMReturn:          "fm.return",
	EvFMReclaimNormal:   "fm.reclaim",
	EvFMReclaimForced:   "fm.reclaim.forced",
	EvFMFlushExchange:   "fm.flushx",
	EvFMImplicitFlush:   "fm.flush.implicit",
	EvFMLaunderStart:    "fm.launder",
	EvFMLaunderDone:     "fm.launder.done",
	EvPolicyActivation:  "policy.activation",
	EvPolicyCommand:     "policy.command",
	EvPolicyRequest:     "policy.request",
	EvPolicyRelease:     "policy.release",
	EvPolicyFlush:       "policy.flush",
	EvPolicyMigrate:     "policy.migrate",
	EvContainerCreated:  "container.created",
	EvActivationError:   "container.error",
	EvCheckerWakeup:     "checker.wakeup",
	EvCheckerTimeout:    "checker.timeout",
	EvCheckerKill:       "checker.kill",
	EvCheckerSweepError: "checker.sweep",
	EvCheckerValidation: "checker.validate",
	EvDiskRead:          "disk.read",
	EvDiskWrite:         "disk.write",
	EvInjectDiskError:   "inject.disk.err",
	EvInjectDiskSlow:    "inject.disk.slow",
	EvInjectPagerLoss:   "inject.pager.loss",
	EvInjectGrantDeny:   "inject.fm.deny",
	EvFaultRetry:        "fault.retry",
	EvFaultAbandon:      "fault.abandon",
	EvPageOutError:      "pageout.error",
	EvPagerFailover:     "pager.failover",
	EvContainerRevoked:  "container.revoked",
	EvVerifyDiag:        "verify.diag",
}

// String returns the event type's stable wire name (used by the log format).
func (t Type) String() string {
	if t < NumTypes {
		return typeNames[t]
	}
	return "invalid"
}

// TypeByName resolves a wire name back to its Type; ok is false for unknown
// names.
func TypeByName(name string) (Type, bool) {
	for t := Type(0); t < NumTypes; t++ {
		if typeNames[t] == name {
			return t, true
		}
	}
	return EvNone, false
}

// Event is one fixed-layout kernel event record. The payload fields carry
// type-specific meaning documented on the Type constants; unused fields are
// zero. Events are passed by value and never retained by the Emitter, so
// emission does not allocate.
type Event struct {
	Time      simtime.Time // virtual time of emission
	Addr      int64        // primary payload: virtual address, block address, command word
	Arg       int64        // secondary payload: counts, object IDs
	Aux       int64        // tertiary payload: offsets, service times
	Space     int32        // address-space scope (0 = none)
	Container int32        // container scope (0 = none)
	Type      Type
	Flag      bool // type-specific boolean (write, denied, sequential, ...)
}

// Sink consumes kernel events. Emit is called synchronously from the
// simulated kernel's single-threaded dispatch, in deterministic order; a
// Sink must not retain pointers into the kernel and must not call back into
// it.
type Sink interface {
	Emit(e Event)
}

// ScopeCounters aggregates the events of one scope (the whole system, one
// address space, or one container), indexed by Type.
type ScopeCounters struct {
	Counts [NumTypes]int64 // events seen
	Sums   [NumTypes]int64 // sum of Arg
	Auxs   [NumTypes]int64 // sum of Aux
	Flags  [NumTypes]int64 // events with Flag set
}

var zeroScope ScopeCounters

// Registry is the metrics view of the event stream: the single source of
// truth for every counter in Kernel.Report() and the experiment harness. It
// is itself a Sink, attached implicitly as the Emitter's first consumer.
// Scoped counters are kept in ID-indexed slices (space and container IDs
// are small and sequential), so counting is allocation-free in steady state.
type Registry struct {
	global     ScopeCounters
	spaces     []ScopeCounters // indexed by address-space ID
	containers []ScopeCounters // indexed by container ID
}

// Emit implements Sink.
func (r *Registry) Emit(e Event) {
	r.global.note(e)
	if e.Space > 0 {
		r.scope(&r.spaces, int(e.Space)).note(e)
	}
	if e.Container > 0 {
		r.scope(&r.containers, int(e.Container)).note(e)
	}
}

func (sc *ScopeCounters) note(e Event) {
	sc.Counts[e.Type]++
	sc.Sums[e.Type] += e.Arg
	sc.Auxs[e.Type] += e.Aux
	if e.Flag {
		sc.Flags[e.Type]++
	}
}

func (r *Registry) scope(s *[]ScopeCounters, id int) *ScopeCounters {
	for id >= len(*s) {
		*s = append(*s, ScopeCounters{})
	}
	return &(*s)[id]
}

// Count reports the system-wide number of events of type t.
func (r *Registry) Count(t Type) int64 { return r.global.Counts[t] }

// Sum reports the system-wide sum of Arg over events of type t.
func (r *Registry) Sum(t Type) int64 { return r.global.Sums[t] }

// Aux reports the system-wide sum of Aux over events of type t.
func (r *Registry) Aux(t Type) int64 { return r.global.Auxs[t] }

// Flagged reports the system-wide number of events of type t with Flag set.
func (r *Registry) Flagged(t Type) int64 { return r.global.Flags[t] }

// Global returns the system-wide counters (read-only).
func (r *Registry) Global() *ScopeCounters { return &r.global }

// Space returns the counters scoped to address space id (read-only; a
// shared zero block for spaces that never emitted).
func (r *Registry) Space(id int) *ScopeCounters {
	if id <= 0 || id >= len(r.spaces) {
		return &zeroScope
	}
	return &r.spaces[id]
}

// Container returns the counters scoped to container id (read-only; a
// shared zero block for containers that never emitted).
func (r *Registry) Container(id int) *ScopeCounters {
	if id <= 0 || id >= len(r.containers) {
		return &zeroScope
	}
	return &r.containers[id]
}

// Spaces reports the number of address-space scopes tracked (the highest
// emitting space ID + 1; index 0 is unused).
func (r *Registry) Spaces() int { return len(r.spaces) }

// add accumulates every counter of o into sc.
func (sc *ScopeCounters) add(o *ScopeCounters) {
	for t := range sc.Counts {
		sc.Counts[t] += o.Counts[t]
		sc.Sums[t] += o.Sums[t]
		sc.Auxs[t] += o.Auxs[t]
		sc.Flags[t] += o.Flags[t]
	}
}

// Merge accumulates every counter of other into r: the global scope and
// each space/container scope by ID. It exists for the sharded multi-kernel
// harness, which merges K per-shard registries into one machine-wide view
// after the shards complete. Space and container IDs are per-kernel, so
// merged scoped counters aggregate "the i-th space of every shard"; the
// global scope is the meaningful fleet-wide total. other must not be
// receiving events concurrently.
func (r *Registry) Merge(other *Registry) {
	r.global.add(&other.global)
	for id := 1; id < len(other.spaces); id++ {
		r.scope(&r.spaces, id).add(&other.spaces[id])
	}
	for id := 1; id < len(other.containers); id++ {
		r.scope(&r.containers, id).add(&other.containers[id])
	}
}

// Emitter is one kernel's event spine: it stamps each event with the
// virtual clock, feeds the Registry, and fans out to attached sinks. Each
// simulated kernel owns exactly one Emitter (parallel experiment sweeps
// build one kernel per cell, so spines never race).
type Emitter struct {
	clock substrate.Clock
	reg   Registry
	sinks []Sink
}

// NewEmitter builds a spine stamping events from clock.
func NewEmitter(clock substrate.Clock) *Emitter {
	if clock.IsZero() {
		panic("kevent: zero clock")
	}
	return &Emitter{clock: clock}
}

// Registry returns the emitter's metrics registry.
func (m *Emitter) Registry() *Registry { return &m.reg }

// Attach adds a sink to the fan-out. Sinks receive events in attachment
// order, after the Registry.
func (m *Emitter) Attach(s Sink) {
	if s == nil {
		panic("kevent: attach of nil sink")
	}
	m.sinks = append(m.sinks, s)
}

// Detach removes a previously attached sink; unknown sinks are a no-op.
func (m *Emitter) Detach(s Sink) {
	for i, cand := range m.sinks {
		if cand == s {
			m.sinks = append(m.sinks[:i], m.sinks[i+1:]...)
			return
		}
	}
}

// Emit stamps e with the current virtual time and delivers it to the
// registry and every attached sink.
func (m *Emitter) Emit(e Event) {
	e.Time = m.clock.Now()
	m.reg.Emit(e)
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

// Counting is a minimal benchmark sink: it counts events and does nothing
// else, measuring the pure cost of having a consumer attached.
type Counting struct {
	N int64
}

// Emit implements Sink.
func (c *Counting) Emit(Event) { c.N++ }

// Funnel adapts a plain function to the Sink interface.
type Funnel func(Event)

// Emit implements Sink.
func (f Funnel) Emit(e Event) { f(e) }
