// Deterministic event-log capture: a Sink that serializes the event stream
// to a line-oriented text format, and a reader that parses it back. Two
// runs of the same deterministic workload produce byte-identical logs, so
// regression checking can move from "diff the final report" to "find the
// first kernel event where two runs diverge" (cmd/replaydiff).
package kevent

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hipec/internal/simtime"
)

// LogHeader is the first line of a serialized event log.
const LogHeader = "# hipec kevent log v1"

// LogWriter is a Sink that streams events to w, one record per line:
//
//	<seq> <time-ns> <type> <space> <container> <addr> <arg> <aux> <flag>
//
// Fields are space-separated decimals (addr in hex); seq is the 0-based
// event index, making "first divergent event" reports stable even when a
// log is truncated. Call Flush before reading the underlying file.
type LogWriter struct {
	w   *bufio.Writer
	seq int64
}

// NewLogWriter starts a log on w and writes the header.
func NewLogWriter(w io.Writer) *LogWriter {
	lw := &LogWriter{w: bufio.NewWriterSize(w, 1<<16)}
	fmt.Fprintln(lw.w, LogHeader)
	return lw
}

// Emit implements Sink.
func (lw *LogWriter) Emit(e Event) {
	flag := 0
	if e.Flag {
		flag = 1
	}
	fmt.Fprintf(lw.w, "%d %d %s %d %d %x %d %d %d\n",
		lw.seq, int64(e.Time), e.Type, e.Space, e.Container, e.Addr, e.Arg, e.Aux, flag)
	lw.seq++
}

// Events reports the number of events written so far.
func (lw *LogWriter) Events() int64 { return lw.seq }

// Flush drains buffered output to the underlying writer.
func (lw *LogWriter) Flush() error { return lw.w.Flush() }

// Log is an in-memory capture sink; it appends every event to Events.
type Log struct {
	Events []Event
}

// Emit implements Sink.
func (l *Log) Emit(e Event) { l.Events = append(l.Events, e) }

// WriteTo serializes the captured events in the LogWriter format.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	lw := NewLogWriter(cw)
	for _, e := range l.Events {
		lw.Emit(e)
	}
	err := lw.Flush()
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// ReadLog parses a serialized event log back into records.
func ReadLog(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("kevent: empty log")
	}
	if got := sc.Text(); got != LogHeader {
		return nil, fmt.Errorf("kevent: bad log header %q", got)
	}
	var out []Event
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		e, err := parseRecord(text, int64(len(out)))
		if err != nil {
			return nil, fmt.Errorf("kevent: log line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseRecord(text string, wantSeq int64) (Event, error) {
	var e Event
	f := strings.Fields(text)
	if len(f) != 9 {
		return e, fmt.Errorf("want 9 fields, got %d", len(f))
	}
	seq, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return e, fmt.Errorf("bad seq %q", f[0])
	}
	if seq != wantSeq {
		return e, fmt.Errorf("seq %d out of order (want %d)", seq, wantSeq)
	}
	t, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return e, fmt.Errorf("bad time %q", f[1])
	}
	typ, ok := TypeByName(f[2])
	if !ok {
		return e, fmt.Errorf("unknown event type %q", f[2])
	}
	space, err := strconv.ParseInt(f[3], 10, 32)
	if err != nil {
		return e, fmt.Errorf("bad space %q", f[3])
	}
	ctr, err := strconv.ParseInt(f[4], 10, 32)
	if err != nil {
		return e, fmt.Errorf("bad container %q", f[4])
	}
	addr, err := strconv.ParseInt(f[5], 16, 64)
	if err != nil {
		return e, fmt.Errorf("bad addr %q", f[5])
	}
	arg, err := strconv.ParseInt(f[6], 10, 64)
	if err != nil {
		return e, fmt.Errorf("bad arg %q", f[6])
	}
	aux, err := strconv.ParseInt(f[7], 10, 64)
	if err != nil {
		return e, fmt.Errorf("bad aux %q", f[7])
	}
	switch f[8] {
	case "0":
	case "1":
		e.Flag = true
	default:
		return e, fmt.Errorf("bad flag %q", f[8])
	}
	e.Time = simtime.Time(t)
	e.Type = typ
	e.Space = int32(space)
	e.Container = int32(ctr)
	e.Addr = addr
	e.Arg = arg
	e.Aux = aux
	return e, nil
}

// Format renders one event as a human-readable diagnostic line (used by
// replaydiff divergence reports).
func (e Event) Format(seq int64) string {
	flag := ""
	if e.Flag {
		flag = " flag"
	}
	return fmt.Sprintf("#%d t=%v %s space=%d ctr=%d addr=%#x arg=%d aux=%d%s",
		seq, e.Time, e.Type, e.Space, e.Container, e.Addr, e.Arg, e.Aux, flag)
}
