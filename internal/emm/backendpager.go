package emm

import (
	"fmt"

	"hipec/internal/hiperr"
	"hipec/internal/substrate"
	"hipec/internal/vm"
)

// BackendPager adapts any substrate.Store into a vm.Pager, completing the
// recovery ladder over real backends: a store (tiered, sharded,
// mmap-backed, fault-injected) becomes a pager that can sit as either side
// of a FailoverPager. Evictions (DataReturn) write pages into the store;
// page-ins (DataRequest) read them back, zero-filling the tail when the
// store holds presence without content.
//
// The pager is as single-threaded as the store under it: it must be driven
// from the kernel loop, like every pager.
type BackendPager struct {
	name  string
	store substrate.Store
}

// NewBackendPager wraps store as a pager named name.
func NewBackendPager(name string, store substrate.Store) *BackendPager {
	if store == nil {
		panic("emm: backend pager needs a store")
	}
	return &BackendPager{name: name, store: store}
}

// Store exposes the wrapped store for inspection.
func (p *BackendPager) Store() substrate.Store { return p.store }

// PagerName implements vm.Pager.
func (p *BackendPager) PagerName() string { return p.name }

// DataRequest implements vm.Pager: a store read. A store error surfaces as
// the pager's failure (the VM retry ladder, or a FailoverPager above us,
// takes it from there); an absent page is a zero-fill, not an error.
func (p *BackendPager) DataRequest(obj uint64, off int64, dst []byte) (bool, error) {
	data, ok, err := p.store.ReadPage(substrate.PageKey{Object: obj, Offset: off})
	if err != nil {
		return false, &hiperr.Error{Op: "emm.backend.request",
			Err: fmt.Errorf("pager %q obj %d off %d: %w", p.name, obj, off, err)}
	}
	if !ok {
		return false, nil
	}
	n := copy(dst, data)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return true, nil
}

// DataReturn implements vm.Pager: a store write.
func (p *BackendPager) DataReturn(obj uint64, off int64, src []byte) error {
	if err := p.store.WritePage(substrate.PageKey{Object: obj, Offset: off}, src); err != nil {
		return &hiperr.Error{Op: "emm.backend.return",
			Err: fmt.Errorf("pager %q obj %d off %d: %w", p.name, obj, off, err)}
	}
	return nil
}

// PagerTerminate implements vm.Pager. Stores are keyed per page and cannot
// enumerate an object's pages cheaply; the backing pages are simply left
// behind, exactly as the filestore-backed realtime engine leaves them. A
// store that can reclaim per key does so through substrate.Deleter at a
// higher layer.
func (p *BackendPager) PagerTerminate(obj uint64) {}

// Contains reports whether the store holds (obj, off); the FailoverPager
// chaos invariant uses it on the durable side.
func (p *BackendPager) Contains(obj uint64, off int64) bool {
	return p.store.Contains(substrate.PageKey{Object: obj, Offset: off})
}

var _ vm.Pager = (*BackendPager)(nil)
