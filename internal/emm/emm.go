// Package emm implements Mach's external memory management interface — the
// substrate HiPEC extends ("HiPEC has been implemented on OSF/1 MK 5.0.2
// ... that extends the external memory management (EMM) interface of Mach
// kernel", §4). A memory object's contents can be supplied by a user-level
// pager instead of the kernel's default store: the kernel sends
// memory_object_data_request on page-in and memory_object_data_return on
// eviction.
//
// Three pagers are provided:
//
//   - StorePager: the default-pager equivalent (disk-backed), used to show
//     the EMM path is behaviourally identical to the in-kernel path.
//   - RemotePager: network remote-memory paging with an RTT+bandwidth
//     model — the 1990s "remote memory is faster than disk" configuration.
//   - CompressingPager: compressed in-memory backing store (a Mach-era
//     research pager), with compression CPU costs charged to the clock.
//
// Every pager charges an IPC round trip per request, because EMM traffic
// crosses the kernel/user boundary — exactly the overhead class HiPEC's
// in-kernel executor avoids for replacement decisions.
package emm

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"time"

	"hipec/internal/disk"
	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/kevent"
	"hipec/internal/machipc"
	"hipec/internal/substrate"
	"hipec/internal/vm"
)

// Stats counts pager activity.
type Stats struct {
	Requests  int64 // data_request messages (page-ins served)
	Returns   int64 // data_return messages (evictions received)
	ZeroFills int64 // requests for never-written pages
	Bytes     int64 // payload bytes moved in either direction
}

// common carries the pieces every pager shares.
type common struct {
	name  string
	ipc   *machipc.IPC
	pages map[disk.StoreKey][]byte
	Stats Stats
}

func newCommon(name string, ipc *machipc.IPC) common {
	return common{name: name, ipc: ipc, pages: make(map[disk.StoreKey][]byte)}
}

// PagerName implements vm.Pager.
func (c *common) PagerName() string { return c.name }

// PagerTerminate implements vm.Pager: drop the object's pages.
func (c *common) PagerTerminate(obj uint64) {
	for k := range c.pages {
		if k.Object == obj {
			delete(c.pages, k)
		}
	}
}

func (c *common) chargeIPC() {
	if c.ipc != nil {
		c.ipc.Clock.Sleep(c.ipc.Costs.NullIPC)
		c.ipc.Stats.RPCs++
		c.ipc.Stats.Messages += 2
	}
}

// --- StorePager -------------------------------------------------------------

// StorePager is a user-level default pager: pages live on a simulated disk
// reached through the pager task. Functionally equivalent to the kernel's
// internal store path, plus the EMM IPC cost.
type StorePager struct {
	common
	disk     *disk.Disk
	pageSize int
	nextBlk  int64
	blocks   map[disk.StoreKey]int64
}

// NewStorePager builds a disk-backed pager on the given clock and costs.
func NewStorePager(name string, clock substrate.Clock, ipc *machipc.IPC, params disk.Params, pageSize int) *StorePager {
	return &StorePager{
		common:   newCommon(name, ipc),
		disk:     disk.New(clock, params, nil),
		pageSize: pageSize,
		blocks:   make(map[disk.StoreKey]int64),
	}
}

// Populate marks pages [0, size) of obj as present (zero content unless
// data supplied), as if the file already existed.
func (p *StorePager) Populate(obj uint64, size int64, data []byte) {
	ps := int64(p.pageSize)
	for off := int64(0); off < size; off += ps {
		key := disk.StoreKey{Object: obj, Offset: off}
		var chunk []byte
		if data != nil && off < int64(len(data)) {
			end := off + ps
			if end > int64(len(data)) {
				end = int64(len(data))
			}
			chunk = append([]byte(nil), data[off:end]...)
		}
		p.pages[key] = chunk
		p.blocks[key] = p.allocBlock()
	}
}

func (p *StorePager) allocBlock() int64 {
	p.nextBlk++
	// Scatter like a real paging file.
	return int64((uint64(p.nextBlk) * 0x9E3779B97F4A7C15) >> 20)
}

// Disk exposes the pager's private paging device (e.g. to attach a fault
// injector).
func (p *StorePager) Disk() *disk.Disk { return p.disk }

// Contains reports whether the pager holds a page for (obj, off).
func (p *StorePager) Contains(obj uint64, off int64) bool {
	_, ok := p.pages[disk.StoreKey{Object: obj, Offset: off}]
	return ok
}

// DataRequest implements vm.Pager.
func (p *StorePager) DataRequest(obj uint64, off int64, dst []byte) (bool, error) {
	p.chargeIPC()
	key := disk.StoreKey{Object: obj, Offset: off}
	data, ok := p.pages[key]
	if !ok {
		p.Stats.ZeroFills++
		return false, nil
	}
	if _, err := p.disk.Read(p.blocks[key], p.pageSize); err != nil {
		return false, &hiperr.Error{Op: "emm.store.request", Err: fmt.Errorf("%s: %w", p.name, err)}
	}
	if dst != nil && data != nil {
		copy(dst, data)
	}
	p.Stats.Requests++
	p.Stats.Bytes += int64(p.pageSize)
	return true, nil
}

// DataReturn implements vm.Pager.
func (p *StorePager) DataReturn(obj uint64, off int64, src []byte) error {
	p.chargeIPC()
	key := disk.StoreKey{Object: obj, Offset: off}
	if _, ok := p.blocks[key]; !ok {
		p.blocks[key] = p.allocBlock()
	}
	var copyOf []byte
	if src != nil {
		copyOf = append([]byte(nil), src...)
	}
	p.pages[key] = copyOf
	p.disk.Write(p.blocks[key], p.pageSize, nil)
	p.Stats.Returns++
	p.Stats.Bytes += int64(p.pageSize)
	return nil
}

var _ vm.Pager = (*StorePager)(nil)

// --- RemotePager ------------------------------------------------------------

// RemotePager pages to the memory of a remote machine over a network with
// a configurable round-trip time and bandwidth. With 1994-era numbers
// (ATM/FDDI RTT ≈ 1 ms, ≈ 10 MB/s) remote memory beats the ≈7.7 ms disk.
type RemotePager struct {
	common
	RTT       time.Duration
	PerByte   time.Duration
	pageSize  int
	clock     substrate.Clock
	available int64 // remaining remote capacity in pages (0 = unlimited)

	// Inject, when non-nil, subjects the pager's network to the fault
	// plane: a failing PagerRequest/PagerReturn decision models a lost
	// message — the pager waits out a timeout (one RTT) and reports
	// ErrPagerLost — and a slow decision adds network latency.
	Inject *faultinj.Plane
	// Events, when non-nil, records injected losses on the kernel spine.
	Events *kevent.Emitter
}

// NewRemotePager builds a remote-memory pager.
func NewRemotePager(name string, clock substrate.Clock, ipc *machipc.IPC, rtt time.Duration, perByte time.Duration, pageSize int) *RemotePager {
	return &RemotePager{
		common:   newCommon(name, ipc),
		RTT:      rtt,
		PerByte:  perByte,
		pageSize: pageSize,
		clock:    clock,
	}
}

func (p *RemotePager) transfer() {
	p.clock.Sleep(p.RTT + time.Duration(p.pageSize)*p.PerByte)
}

// Contains reports whether the remote end holds a page for (obj, off).
func (p *RemotePager) Contains(obj uint64, off int64) bool {
	_, ok := p.pages[disk.StoreKey{Object: obj, Offset: off}]
	return ok
}

// network consults the fault plane for one message exchange at pt. On loss
// it charges the timeout (one RTT spent waiting for the reply that never
// comes) and returns an ErrPagerLost-wrapping error.
func (p *RemotePager) network(pt faultinj.Point, obj uint64, off int64) error {
	dec := p.Inject.Decide(pt)
	if dec.Slow > 0 {
		p.clock.Sleep(dec.Slow)
	}
	if !dec.Fail {
		return nil
	}
	if p.Events != nil {
		p.Events.Emit(kevent.Event{Type: kevent.EvInjectPagerLoss, Arg: int64(obj), Aux: off, Flag: pt == faultinj.PagerReturn})
	}
	p.clock.Sleep(p.RTT)
	op := "emm.remote.request"
	if pt == faultinj.PagerReturn {
		op = "emm.remote.return"
	}
	return &hiperr.Error{Op: op, Err: fmt.Errorf("%s: %w", p.name, hiperr.ErrPagerLost)}
}

// DataRequest implements vm.Pager.
func (p *RemotePager) DataRequest(obj uint64, off int64, dst []byte) (bool, error) {
	p.chargeIPC()
	if err := p.network(faultinj.PagerRequest, obj, off); err != nil {
		return false, err
	}
	key := disk.StoreKey{Object: obj, Offset: off}
	data, ok := p.pages[key]
	if !ok {
		p.Stats.ZeroFills++
		return false, nil
	}
	p.transfer()
	if dst != nil && data != nil {
		copy(dst, data)
	}
	p.Stats.Requests++
	p.Stats.Bytes += int64(p.pageSize)
	return true, nil
}

// DataReturn implements vm.Pager.
func (p *RemotePager) DataReturn(obj uint64, off int64, src []byte) error {
	p.chargeIPC()
	if err := p.network(faultinj.PagerReturn, obj, off); err != nil {
		return err
	}
	p.transfer()
	var copyOf []byte
	if src != nil {
		copyOf = append([]byte(nil), src...)
	}
	p.pages[disk.StoreKey{Object: obj, Offset: off}] = copyOf
	p.Stats.Returns++
	p.Stats.Bytes += int64(p.pageSize)
	return nil
}

var _ vm.Pager = (*RemotePager)(nil)

// --- CompressingPager --------------------------------------------------------

// CompressingPager keeps evicted pages compressed in (simulated) local
// memory: page-ins cost a decompression, page-outs a compression, both
// charged as CPU time proportional to the page size. When real page data
// is available it actually deflates it and reports true compressed sizes.
type CompressingPager struct {
	common
	pageSize       int
	clock          substrate.Clock
	CompressCPU    time.Duration // per page
	DecompressCPU  time.Duration // per page
	CompressedSize int64         // total bytes held compressed
}

// NewCompressingPager builds the compressed-memory pager. Costs default to
// i486-era zlib throughput (≈1 MB/s compress, ≈4 MB/s decompress).
func NewCompressingPager(name string, clock substrate.Clock, ipc *machipc.IPC, pageSize int) *CompressingPager {
	return &CompressingPager{
		common:        newCommon(name, ipc),
		pageSize:      pageSize,
		clock:         clock,
		CompressCPU:   4 * time.Millisecond,
		DecompressCPU: 1 * time.Millisecond,
	}
}

// DataRequest implements vm.Pager.
func (p *CompressingPager) DataRequest(obj uint64, off int64, dst []byte) (bool, error) {
	p.chargeIPC()
	key := disk.StoreKey{Object: obj, Offset: off}
	blob, ok := p.pages[key]
	if !ok {
		p.Stats.ZeroFills++
		return false, nil
	}
	p.clock.Sleep(p.DecompressCPU)
	if dst != nil && blob != nil {
		r := flate.NewReader(bytes.NewReader(blob))
		if _, err := io.ReadFull(r, dst); err != nil && err != io.ErrUnexpectedEOF {
			return false, fmt.Errorf("emm: decompress: %w", err)
		}
		r.Close()
	}
	p.Stats.Requests++
	p.Stats.Bytes += int64(p.pageSize)
	return true, nil
}

// DataReturn implements vm.Pager.
func (p *CompressingPager) DataReturn(obj uint64, off int64, src []byte) error {
	p.chargeIPC()
	p.clock.Sleep(p.CompressCPU)
	key := disk.StoreKey{Object: obj, Offset: off}
	if old, ok := p.pages[key]; ok {
		p.CompressedSize -= int64(len(old))
	}
	var blob []byte
	if src != nil {
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := w.Write(src); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		blob = buf.Bytes()
	}
	p.pages[key] = blob
	p.CompressedSize += int64(len(blob))
	p.Stats.Returns++
	p.Stats.Bytes += int64(p.pageSize)
	return nil
}

var _ vm.Pager = (*CompressingPager)(nil)
