package emm

import (
	"testing"
	"time"

	"hipec/internal/core"
	"hipec/internal/disk"
	"hipec/internal/machipc"
	"hipec/internal/policies"
	"hipec/internal/vm"
)

// attach creates a kernel, binds an externally-paged object under a HiPEC
// FIFO policy and returns the pieces.
func attach(t *testing.T, mk func(k *core.Kernel, ipc *machipc.IPC) vm.Pager, pages int64) (*core.Kernel, *vm.AddressSpace, *vm.MapEntry, vm.Pager) {
	t.Helper()
	k := core.New(core.Config{Frames: 512, KeepData: true})
	ipc := machipc.New(k.Clock, machipc.Costs{})
	pager := mk(k, ipc)
	obj := k.VM.NewObject(pages*4096, true)
	obj.ExternalPager = pager
	sp := k.NewSpace()
	e, _, err := k.Map(sp, obj, 0, obj.Size, core.WithPolicy(policies.FIFO(8)))
	if err != nil {
		t.Fatal(err)
	}
	return k, sp, e, pager
}

func TestStorePagerRoundTrip(t *testing.T) {
	var sp *StorePager
	k, task, e, _ := attach(t, func(k *core.Kernel, ipc *machipc.IPC) vm.Pager {
		sp = NewStorePager("store", k.Clock, ipc, disk.DefaultParams(), 4096)
		return sp
	}, 32)
	// First touches zero-fill (pager has no data yet).
	p, err := task.Write(e.Start)
	if err != nil {
		t.Fatal(err)
	}
	p.Data[7] = 0x42
	if sp.Stats.ZeroFills != 1 {
		t.Fatalf("ZeroFills = %d", sp.Stats.ZeroFills)
	}
	// Evict it by sweeping past the pool; dirty data goes to the pager.
	for i := int64(1); i < 32; i++ {
		if _, err := task.Touch(e.Start + i*4096); err != nil {
			t.Fatal(err)
		}
	}
	if e.Object.Resident(0) != nil {
		t.Fatal("page 0 still resident")
	}
	if sp.Stats.Returns == 0 {
		t.Fatal("no data_return messages")
	}
	// Refault: contents come back from the pager.
	p2, err := task.Touch(e.Start)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Data[7] != 0x42 {
		t.Fatal("data lost through the external pager")
	}
	if sp.Stats.Requests == 0 {
		t.Fatal("no data_request messages")
	}
	_ = k
}

func TestStorePagerPopulate(t *testing.T) {
	var spg *StorePager
	_, task, e, _ := attach(t, func(k *core.Kernel, ipc *machipc.IPC) vm.Pager {
		spg = NewStorePager("store", k.Clock, ipc, disk.DefaultParams(), 4096)
		content := make([]byte, 2*4096)
		content[4096] = 0x99
		spg.Populate(1, 2*4096, content) // object IDs start at 1
		return spg
	}, 2)
	p, err := task.Touch(e.Start + 4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data[0] != 0x99 {
		t.Fatal("populated content not served")
	}
	if spg.Stats.Requests != 1 {
		t.Fatalf("Requests = %d", spg.Stats.Requests)
	}
}

func TestRemotePagerFasterThanDisk(t *testing.T) {
	// Page-in latency: remote memory (1 ms RTT + transfer) must beat the
	// ~7.7 ms disk; both include the EMM IPC charge.
	measure := func(mk func(k *core.Kernel, ipc *machipc.IPC) vm.Pager) time.Duration {
		k, task, e, _ := attach(t, mk, 16)
		// Prime every page as dirty and force it out to the pager.
		for i := int64(0); i < 16; i++ {
			task.Write(e.Start + i*4096)
		}
		k.Clock.Advance(time.Second)
		// Refault page 0 and time it.
		if e.Object.Resident(0) != nil {
			t.Skip("page 0 unexpectedly resident")
		}
		start := k.Clock.Now()
		if _, err := task.Touch(e.Start); err != nil {
			t.Fatal(err)
		}
		return time.Duration(k.Clock.Now().Sub(start))
	}
	diskTime := measure(func(k *core.Kernel, ipc *machipc.IPC) vm.Pager {
		return NewStorePager("disk", k.Clock, ipc, disk.DefaultParams(), 4096)
	})
	remoteTime := measure(func(k *core.Kernel, ipc *machipc.IPC) vm.Pager {
		return NewRemotePager("net", k.Clock, ipc, time.Millisecond, 100*time.Nanosecond, 4096)
	})
	if remoteTime >= diskTime {
		t.Fatalf("remote paging (%v) not faster than disk paging (%v)", remoteTime, diskTime)
	}
}

func TestCompressingPagerRoundTrip(t *testing.T) {
	var cp *CompressingPager
	_, task, e, _ := attach(t, func(k *core.Kernel, ipc *machipc.IPC) vm.Pager {
		cp = NewCompressingPager("zram", k.Clock, ipc, 4096)
		return cp
	}, 32)
	// Write a compressible pattern.
	p, _ := task.Write(e.Start)
	for i := range p.Data {
		p.Data[i] = byte(i % 4)
	}
	for i := int64(1); i < 32; i++ {
		task.Touch(e.Start + i*4096)
	}
	if cp.Stats.Returns == 0 {
		t.Fatal("nothing compressed")
	}
	if cp.CompressedSize <= 0 || cp.CompressedSize >= 4096 {
		t.Fatalf("CompressedSize = %d, want (0,4096) for a repetitive page", cp.CompressedSize)
	}
	p2, err := task.Touch(e.Start)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p2.Data {
		if p2.Data[i] != byte(i%4) {
			t.Fatalf("byte %d corrupted after compress/decompress", i)
		}
	}
}

func TestPagerTerminateDropsPages(t *testing.T) {
	var spg *StorePager
	k, task, e, _ := attach(t, func(k *core.Kernel, ipc *machipc.IPC) vm.Pager {
		spg = NewStorePager("store", k.Clock, ipc, disk.DefaultParams(), 4096)
		return spg
	}, 16)
	for i := int64(0); i < 16; i++ {
		task.Write(e.Start + i*4096)
	}
	k.Clock.Advance(time.Second)
	if len(spg.pages) == 0 {
		t.Fatal("no pages at the pager")
	}
	k.VM.DestroyObject(e.Object)
	if len(spg.pages) != 0 {
		t.Fatalf("pager still holds %d pages after terminate", len(spg.pages))
	}
}

func TestEMMChargesIPC(t *testing.T) {
	var gotIPC *machipc.IPC
	k, task, e, _ := attach(t, func(k *core.Kernel, ipc *machipc.IPC) vm.Pager {
		gotIPC = ipc
		return NewRemotePager("net", k.Clock, ipc, time.Millisecond, 100*time.Nanosecond, 4096)
	}, 16)
	for i := int64(0); i < 16; i++ {
		task.Write(e.Start + i*4096)
	}
	k.Clock.Advance(time.Second)
	task.Touch(e.Start) // refault through the pager
	if gotIPC.Stats.RPCs == 0 {
		t.Fatal("EMM traffic did not charge IPC")
	}
}
