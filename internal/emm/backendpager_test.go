package emm

import (
	"bytes"
	"errors"
	"testing"

	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/store"
	"hipec/internal/substrate"
)

const bpPS = 256

func bpPage(seed byte) []byte {
	p := make([]byte, bpPS)
	for i := range p {
		p[i] = seed + byte(i)*13
	}
	return p
}

func TestBackendPagerRoundTrip(t *testing.T) {
	pg := NewBackendPager("mem", substrate.NewMemStore(bpPS, true))
	if err := pg.DataReturn(7, 0, bpPage(0x21)); err != nil {
		t.Fatalf("DataReturn: %v", err)
	}
	dst := make([]byte, bpPS)
	present, err := pg.DataRequest(7, 0, dst)
	if err != nil || !present {
		t.Fatalf("DataRequest: present %v err %v", present, err)
	}
	if !bytes.Equal(dst, bpPage(0x21)) {
		t.Fatal("page corrupted across DataReturn/DataRequest")
	}
	// Absent page: zero-fill signal, no error.
	present, err = pg.DataRequest(7, int64(bpPS), dst)
	if err != nil || present {
		t.Fatalf("DataRequest(absent): present %v err %v", present, err)
	}
}

func TestBackendPagerStoreErrorIsTyped(t *testing.T) {
	plane := faultinj.NewPlane(7)
	plane.SetRule(faultinj.DiskWrite, faultinj.Rule{FailEvery: 1})
	pg := NewBackendPager("faulty", store.InjectFaults(substrate.NewMemStore(bpPS, true), plane))
	err := pg.DataReturn(1, 0, bpPage(1))
	if err == nil {
		t.Fatal("DataReturn over failing store returned nil")
	}
	if !errors.Is(err, hiperr.ErrDiskIO) {
		t.Fatalf("pager error %v does not wrap hiperr.ErrDiskIO", err)
	}
}

// TestFailoverFromDyingTieredStore walks the full recovery ladder: a
// tiered store whose reads start failing (injected via the fault plane)
// sits under the primary BackendPager; the FailoverPager's write-through
// mirror keeps a durable copy, and after the loss threshold every request
// is served from the mirror with the right bytes.
func TestFailoverFromDyingTieredStore(t *testing.T) {
	plane := faultinj.NewPlane(99)
	tiered := store.NewTiered(substrate.NewMemStore(bpPS, true),
		substrate.NewMemStore(bpPS, true), store.WriteThrough, 4)
	primary := NewBackendPager("tiered", store.InjectFaults(tiered, plane))
	mirror := substrate.NewMemStore(bpPS, true)
	fallback := NewBackendPager("mirror", mirror)
	fp := NewFailoverPager(primary, fallback, nil)

	// Healthy phase: evictions land on both sides.
	for i := int64(0); i < 6; i++ {
		if err := fp.DataReturn(3, i*bpPS, bpPage(byte(i))); err != nil {
			t.Fatalf("DataReturn %d: %v", i, err)
		}
	}
	if mirror.Len() != 6 {
		t.Fatalf("mirror holds %d pages, want 6 (write-through broken)", mirror.Len())
	}
	dst := make([]byte, bpPS)
	if present, err := fp.DataRequest(3, 0, dst); err != nil || !present {
		t.Fatalf("healthy DataRequest: present %v err %v", present, err)
	}

	// The tiered store starts dying: every read fails.
	plane.SetRule(faultinj.DiskRead, faultinj.Rule{FailEvery: 1})
	losses := 0
	for i := 0; i < DefaultFailoverThreshold; i++ {
		_, err := fp.DataRequest(3, bpPS, dst)
		if err != nil {
			if !errors.Is(err, hiperr.ErrDiskIO) {
				t.Fatalf("loss %d: error %v does not wrap hiperr.ErrDiskIO", i, err)
			}
			losses++
			continue
		}
		// The loss that crosses the threshold is absorbed and served
		// from the mirror.
		if !fp.FailedOver() {
			t.Fatalf("request %d succeeded without failover while primary is dying", i)
		}
	}
	if !fp.FailedOver() {
		t.Fatalf("no failover after %d consecutive losses", DefaultFailoverThreshold)
	}
	if losses != DefaultFailoverThreshold-1 {
		t.Fatalf("%d caller-visible losses, want %d (threshold-crossing loss is absorbed)",
			losses, DefaultFailoverThreshold-1)
	}

	// Failed over: every page serves from the mirror, bytes intact, and
	// the dying primary is never consulted again.
	for i := int64(0); i < 6; i++ {
		present, err := fp.DataRequest(3, i*bpPS, dst)
		if err != nil || !present {
			t.Fatalf("post-failover DataRequest %d: present %v err %v", i, present, err)
		}
		if !bytes.Equal(dst, bpPage(byte(i))) {
			t.Fatalf("post-failover page %d has wrong bytes", i)
		}
	}
	if !fp.Contains(3, 0) {
		t.Fatal("Contains lost sight of a mirrored page")
	}
}
