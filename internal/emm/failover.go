package emm

import (
	"hipec/internal/kevent"
	"hipec/internal/vm"
)

// DefaultFailoverThreshold is the number of consecutive primary-pager losses
// after which a FailoverPager abandons the primary.
const DefaultFailoverThreshold = 3

// FailoverPager pairs a fast-but-lossy primary pager (typically a
// RemotePager over a faulty network) with a durable fallback (typically a
// StorePager). Page-outs are written through to the fallback as well as the
// primary, so the fallback is always a complete mirror of every page the
// kernel has evicted; after Threshold consecutive primary losses the pager
// fails over permanently and serves everything from the fallback.
//
// Caveat: pages pre-populated only into the primary (never evicted through
// DataReturn) are not mirrored; prime the fallback too if such pages must
// survive failover.
type FailoverPager struct {
	// Threshold is the consecutive-loss count that triggers failover
	// (default DefaultFailoverThreshold).
	Threshold int

	primary  vm.Pager
	fallback vm.Pager
	events   *kevent.Emitter // may be nil

	failures   int // consecutive primary losses
	failedOver bool
}

// NewFailoverPager builds a failover pair. events may be nil; when set, the
// failover transition is recorded on the spine (EvPagerFailover).
func NewFailoverPager(primary, fallback vm.Pager, events *kevent.Emitter) *FailoverPager {
	if primary == nil || fallback == nil {
		panic("emm: failover pager needs both a primary and a fallback")
	}
	return &FailoverPager{Threshold: DefaultFailoverThreshold, primary: primary, fallback: fallback, events: events}
}

// PagerName implements vm.Pager.
func (p *FailoverPager) PagerName() string {
	return "failover(" + p.primary.PagerName() + "->" + p.fallback.PagerName() + ")"
}

// FailedOver reports whether the pager has abandoned its primary.
func (p *FailoverPager) FailedOver() bool { return p.failedOver }

// Primary and Fallback expose the pair for inspection.
func (p *FailoverPager) Primary() vm.Pager  { return p.primary }
func (p *FailoverPager) Fallback() vm.Pager { return p.fallback }

// noteLoss counts a consecutive primary loss; it reports true when this loss
// crossed the threshold and the pager just failed over.
func (p *FailoverPager) noteLoss() bool {
	p.failures++
	if p.failures < p.Threshold {
		return false
	}
	p.failedOver = true
	if p.events != nil {
		p.events.Emit(kevent.Event{Type: kevent.EvPagerFailover, Arg: int64(p.failures)})
	}
	return true
}

// DataRequest implements vm.Pager: serve from the primary until it is
// declared lost, then from the fallback mirror. A primary error before
// failover is returned to the caller (the VM retry ladder comes back), but
// the loss that crosses the threshold is absorbed: the request is served
// from the fallback immediately.
func (p *FailoverPager) DataRequest(obj uint64, off int64, dst []byte) (bool, error) {
	if !p.failedOver {
		present, err := p.primary.DataRequest(obj, off, dst)
		if err == nil {
			p.failures = 0
			return present, nil
		}
		if !p.noteLoss() {
			return false, err
		}
	}
	return p.fallback.DataRequest(obj, off, dst)
}

// DataReturn implements vm.Pager: write through to both sides. The fallback
// write makes the page durable regardless of the primary's fate, so a
// primary loss here never loses data — it only counts toward failover, and
// the caller sees success as long as the fallback accepted the page.
func (p *FailoverPager) DataReturn(obj uint64, off int64, src []byte) error {
	if !p.failedOver {
		if err := p.primary.DataReturn(obj, off, src); err != nil {
			p.noteLoss()
		} else {
			p.failures = 0
		}
	}
	return p.fallback.DataReturn(obj, off, src)
}

// PagerTerminate implements vm.Pager.
func (p *FailoverPager) PagerTerminate(obj uint64) {
	p.primary.PagerTerminate(obj)
	p.fallback.PagerTerminate(obj)
}

// Contains reports whether the durable side of the pair holds (obj, off);
// used by the chaos soak's no-lost-page invariant.
func (p *FailoverPager) Contains(obj uint64, off int64) bool {
	type container interface{ Contains(uint64, int64) bool }
	if c, ok := p.fallback.(container); ok {
		return c.Contains(obj, off)
	}
	return false
}

var _ vm.Pager = (*FailoverPager)(nil)
