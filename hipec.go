// Package hipec is the public API of the HiPEC reproduction: a
// High-Performance External virtual-memory Caching mechanism (Lee, Chen,
// Chang — OSDI 1994) implemented on a deterministic simulated Mach-3.0-like
// kernel.
//
// HiPEC lets an application control page replacement for its own memory
// regions without crossing the kernel/user boundary: the application
// registers a policy — a program in the 20-command HiPEC command set — and
// the in-kernel policy executor interprets it at every page fault on the
// region, against a private frame pool granted by the global frame manager.
//
// # Quick start
//
//	k := hipec.New(hipec.Config{Frames: 16384}) // 64 MB machine
//	task := k.NewSpace()
//
//	spec, err := hipec.Translate("mru", `
//	    minframe = 1024
//	    event PageFault() {
//	        if (empty(_free_queue)) { mru(_active_queue) }
//	        page = dequeue_head(_free_queue)
//	        return page
//	    }
//	    event ReclaimFrame() {
//	        if (empty(_free_queue)) { fifo(_active_queue) }
//	        if (!empty(_free_queue)) { release(1) }
//	        return
//	    }`)
//	if err != nil { ... }
//
//	region, container, err := k.AllocateHiPEC(task, 8<<20, spec)
//	if err != nil { ... }
//	task.Touch(region.Start) // faults run the policy
//
// # Two substrates
//
// The engine runs on a pluggable substrate (Config.Substrate):
//
//   - Simulation (the zero value): everything is driven by a deterministic
//     virtual clock (k.Clock) — elapsed times are virtual nanoseconds
//     calibrated to the paper's testbed, experiments reproduce bit-for-bit,
//     and the kernel is single-goroutine.
//   - Realtime (SubstrateConfig{Kind: SubstrateReal, Store: ...}): the same
//     engine on wall-clock time — frames carry real 4 KB payloads, a
//     file-backed store (NewFileStore) does genuine I/O, cost models default
//     to zero because time is measured rather than modeled, and concurrent
//     callers drive the kernel through the serialized command loop
//     (NewLoop). See examples/realcache.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package hipec

import (
	"hipec/internal/core"
	"hipec/internal/disk/filestore"
	"hipec/internal/emm"
	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/hpl"
	"hipec/internal/kevent"
	"hipec/internal/mem"
	"hipec/internal/pageout"
	"hipec/internal/policies"
	"hipec/internal/simtime"
	"hipec/internal/substrate"
	"hipec/internal/trace"
	"hipec/internal/vm"
)

// Core kernel types.
type (
	// Kernel is the simulated Mach-with-HiPEC kernel.
	Kernel = core.Kernel
	// Config assembles a Kernel.
	Config = core.Config
	// Spec is a complete user policy: event programs plus operand
	// declarations and resource parameters.
	Spec = core.Spec
	// Container is the kernel object recording a specific application's
	// operand array, command buffers and private frame lists.
	Container = core.Container
	// Program is one event's command sequence.
	Program = core.Program
	// Command is one encoded 32-bit HiPEC command.
	Command = core.Command
	// Opcode is the 8-bit HiPEC operator code.
	Opcode = core.Opcode
	// OperandDecl declares an application operand slot.
	OperandDecl = core.OperandDecl
	// ExecCosts calibrates policy-execution time charging.
	ExecCosts = core.ExecCosts
	// ContainerState is a container's lifecycle state.
	ContainerState = core.ContainerState
)

// Container lifecycle states.
const (
	StateActive     = core.StateActive
	StateTerminated = core.StateTerminated
	StateDestroyed  = core.StateDestroyed
	StateRevoked    = core.StateRevoked
)

// Allocation options for Kernel.Allocate / Kernel.Map.
type AllocOption = core.AllocOption

var (
	// WithPolicy places the region under a HiPEC policy (vm_allocate_hipec).
	WithPolicy = core.WithPolicy
	// WithPager backs the region with an external memory manager.
	WithPager = core.WithPager
	// WithRetryBudget overrides the fault path's retry budget per region.
	WithRetryBudget = core.WithRetryBudget
)

// VM substrate types.
type (
	// AddressSpace is a task's virtual address space.
	AddressSpace = vm.AddressSpace
	// MapEntry is one mapped region.
	MapEntry = vm.MapEntry
	// Object is a Mach VM object.
	Object = vm.Object
	// Page is a physical page frame descriptor.
	Page = mem.Page
	// PageQueue is an intrusive list of page frames.
	PageQueue = mem.Queue
	// Policy is the replacement-policy interface the fault handler calls.
	Policy = vm.Policy
	// Fault describes one page fault in flight.
	Fault = vm.Fault
	// VMCosts calibrates the VM layer's time charging.
	VMCosts = vm.Costs
	// PageoutTargets are the default daemon's watermarks.
	PageoutTargets = pageout.Targets
	// Time is virtual time since kernel boot.
	Time = simtime.Time
)

// Kernel event spine (internal/kevent): every subsystem emits typed Event
// records into one stream; consumers implement Sink. Attach sinks at
// construction via Config.Sinks or at runtime via Kernel.Events().Attach.
// The Registry (Kernel.Registry()) aggregates the stream into per-system,
// per-space and per-container counters — the single source of truth behind
// Kernel.Report() and every subsystem's Stats() snapshot.
type (
	// Event is one fixed-layout kernel event record.
	Event = kevent.Event
	// EventType identifies one kind of kernel event.
	EventType = kevent.Type
	// Sink consumes kernel events.
	Sink = kevent.Sink
	// Registry is the metrics view of the event stream.
	Registry = kevent.Registry
	// EventLog is an in-memory event capture sink.
	EventLog = kevent.Log
)

var (
	// NewEventLogWriter builds a streaming event-log sink (see cmd/replaydiff).
	NewEventLogWriter = kevent.NewLogWriter
	// ReadEventLog parses a serialized event log.
	ReadEventLog = kevent.ReadLog
)

// Substrate selection (internal/substrate): the seam between the engine and
// the world it runs in. The zero SubstrateConfig is the deterministic
// simulation; SubstrateReal runs the same engine on wall-clock time.
type (
	// SubstrateConfig selects the substrate a kernel is assembled on
	// (Config.Substrate).
	SubstrateConfig = substrate.Config
	// SubstrateKind names a substrate backend family.
	SubstrateKind = substrate.Kind
	// Store is page-granular backing storage; the realtime substrate
	// accepts a file-backed implementation via SubstrateConfig.Store.
	Store = substrate.Store
	// FileStore is the realtime substrate's file-backed page store.
	FileStore = filestore.Store
	// Loop is the actor-style serialized command loop that makes a
	// (typically realtime) kernel safe for concurrent callers.
	Loop = core.Loop
)

// Substrate kinds.
const (
	// SubstrateSim is the deterministic discrete-event simulation (default).
	SubstrateSim = substrate.KindSim
	// SubstrateReal is the wall-clock realtime substrate.
	SubstrateReal = substrate.KindReal
)

var (
	// NewFileStore opens (truncating) a file-backed page store.
	NewFileStore = filestore.Open
	// NewTempFileStore opens a file-backed page store on a fresh temp file
	// that Close removes.
	NewTempFileStore = filestore.OpenTemp
	// NewLoop starts a kernel's serialized command loop; concurrent
	// goroutines submit work with Loop.Call / Loop.Async.
	NewLoop = core.NewLoop
	// ErrLoopClosed is returned by Loop.Call after Loop.Close.
	ErrLoopClosed = core.ErrLoopClosed
)

// New builds a simulated kernel. Zero-valued Config fields take calibrated
// defaults (4 KB pages, the paper's fault/disk cost model, partition_burst
// at 50% of startup free memory).
func New(cfg Config) *Kernel { return core.New(cfg) }

// Translate compiles an HPL pseudo-code policy (the §4.3.4 translator) into
// a Spec.
func Translate(name, src string) (*Spec, error) { return hpl.Translate(name, src) }

// MustTranslate is Translate for known-good embedded policy source.
func MustTranslate(name, src string) *Spec { return hpl.MustTranslate(name, src) }

// Disassemble renders one event program as an annotated Table-2-style
// listing.
func Disassemble(p Program) string { return hpl.Disassemble(p) }

// DisassembleSpec renders every event of a spec.
func DisassembleSpec(s *Spec) string { return hpl.DisassembleSpec(s) }

// Canned policies (internal/policies).
var (
	// PolicyFIFO returns a plain FIFO replacement policy.
	PolicyFIFO = policies.FIFO
	// PolicyLRU returns a least-recently-used policy.
	PolicyLRU = policies.LRU
	// PolicyMRU returns the most-recently-used policy of §5.3.
	PolicyMRU = policies.MRU
	// PolicyFIFOSecondChance returns the paper's Figure 4 policy.
	PolicyFIFOSecondChance = policies.FIFOSecondChance
	// PolicySequentialToss returns a scan-resistant streaming policy.
	PolicySequentialToss = policies.SequentialToss
	// PolicyByName resolves a policy by CLI name.
	PolicyByName = policies.ByName
)

// Reserved event numbers.
const (
	EventPageFault    = core.EventPageFault
	EventReclaimFrame = core.EventReclaimFrame
	EventUser         = core.EventUser
)

// Error is the structured kernel error: every error surfaced by the public
// API wraps one, carrying the operation name, the space/container IDs and
// (for policy faults) the failing command counter. Classify with errors.Is
// against the sentinels below; recover the context with errors.As.
type Error = hiperr.Error

// Error sentinels, matchable through any wrap depth with errors.Is.
var (
	// ErrMinFrame is returned when activation cannot grant the requested
	// minimum frames.
	ErrMinFrame = hiperr.ErrMinFrame
	// ErrDiskIO marks an (injected) paging-device transfer failure.
	ErrDiskIO = hiperr.ErrDiskIO
	// ErrPagerLost marks a remote-pager network loss or timeout.
	ErrPagerLost = hiperr.ErrPagerLost
	// ErrPolicyFault marks a policy runtime fault or activation rejection.
	ErrPolicyFault = hiperr.ErrPolicyFault
	// ErrPolicyRejected marks a registration-time rejection by the static
	// verifier (it wraps ErrPolicyFault, so both sentinels match).
	ErrPolicyRejected = hiperr.ErrPolicyRejected
	// ErrRevoked marks an operation against a revoked (degraded) container.
	ErrRevoked = hiperr.ErrRevoked
	// ErrBadSpec marks a malformed policy spec (bad operand declarations).
	ErrBadSpec = hiperr.ErrBadSpec
	// ErrBadOperand marks host access to a policy operand that does not
	// exist, has the wrong kind, or cannot be written.
	ErrBadOperand = hiperr.ErrBadOperand
)

// Fault injection (internal/faultinj): the deterministic chaos plane.
// Configure via Config.Faults; a zero Seed disables injection entirely.
type (
	// FaultConfig seeds and scopes the fault-injection plane.
	FaultConfig = faultinj.Config
	// FaultRule sets failure/latency rates for one injection class.
	FaultRule = faultinj.Rule
	// FaultPlane is the seeded deterministic decision source.
	FaultPlane = faultinj.Plane
	// RetryPolicy bounds the VM fault path's page-in retries.
	RetryPolicy = vm.Retry
)

// External memory management (internal/emm): user-level pagers behind the
// Mach EMM interface.
type (
	// Pager supplies and receives memory-object contents (Mach EMM).
	Pager = vm.Pager
	// StorePager is a user-level default pager (disk-backed).
	StorePager = emm.StorePager
	// RemotePager pages to remote memory over a modeled network.
	RemotePager = emm.RemotePager
	// CompressingPager keeps evicted pages deflate-compressed in memory.
	CompressingPager = emm.CompressingPager
	// FailoverPager pairs a lossy primary pager with a durable fallback
	// mirror and fails over after repeated primary losses.
	FailoverPager = emm.FailoverPager
)

var (
	// NewStorePager builds a disk-backed user-level pager.
	NewStorePager = emm.NewStorePager
	// NewRemotePager builds a remote-memory pager.
	NewRemotePager = emm.NewRemotePager
	// NewCompressingPager builds a compressed-memory pager.
	NewCompressingPager = emm.NewCompressingPager
	// NewFailoverPager builds a primary+fallback pager pair.
	NewFailoverPager = emm.NewFailoverPager
)

// Trace analysis (internal/trace): page-reference traces, replay, and the
// Belady-optimal baseline.
type (
	// Trace is a page-reference string.
	Trace = trace.Trace
	// TraceRecord is one page reference.
	TraceRecord = trace.Record
)

var (
	// ReadTrace parses a serialized trace.
	ReadTrace = trace.Read
	// ReplayTrace drives a trace against a mapped region.
	ReplayTrace = trace.Replay
	// OptimalFaults computes Belady's OPT fault count — the lower bound
	// no replacement policy can beat.
	OptimalFaults = trace.OPT
	// LRUFaults computes exact-LRU fault counts for a trace.
	LRUFaults = trace.LRU
	// AnalyzeTrace summarizes a trace (unique pages, reuse distances).
	AnalyzeTrace = trace.Analyze
)
