// Package hipec is the public API of the HiPEC reproduction: a
// High-Performance External virtual-memory Caching mechanism (Lee, Chen,
// Chang — OSDI 1994) implemented on a deterministic simulated Mach-3.0-like
// kernel.
//
// HiPEC lets an application control page replacement for its own memory
// regions without crossing the kernel/user boundary: the application
// registers a policy — a program in the 20-command HiPEC command set — and
// the in-kernel policy executor interprets it at every page fault on the
// region, against a private frame pool granted by the global frame manager.
//
// # Quick start
//
//	k := hipec.New(hipec.Config{Frames: 16384}) // 64 MB machine
//	task := k.NewSpace()
//
//	spec, err := hipec.Translate("mru", `
//	    minframe = 1024
//	    event PageFault() {
//	        if (empty(_free_queue)) { mru(_active_queue) }
//	        page = dequeue_head(_free_queue)
//	        return page
//	    }
//	    event ReclaimFrame() {
//	        if (empty(_free_queue)) { fifo(_active_queue) }
//	        if (!empty(_free_queue)) { release(1) }
//	        return
//	    }`)
//	if err != nil { ... }
//
//	region, container, err := k.Allocate(task, 8<<20, hipec.WithPolicy(spec))
//	if err != nil { ... }
//	task.Touch(region.Start) // faults run the policy
//
// # Two substrates
//
// The engine runs on a pluggable substrate (Config.Substrate):
//
//   - Simulation (the zero value): everything is driven by a deterministic
//     virtual clock (k.Clock) — elapsed times are virtual nanoseconds
//     calibrated to the paper's testbed, experiments reproduce bit-for-bit,
//     and the kernel is single-goroutine.
//   - Realtime (SubstrateConfig{Kind: SubstrateReal, Store: ...}): the same
//     engine on wall-clock time — frames carry real 4 KB payloads, a
//     file-backed store (NewFileStore) does genuine I/O, cost models default
//     to zero because time is measured rather than modeled, and concurrent
//     callers drive the kernel through the serialized command loop
//     (NewClient). See examples/realcache.
//
// # Serving over the network
//
// A realtime cache can serve remote clients: Serve puts a tiny
// length-prefixed binary wire protocol in front of the command loop, and
// Dial returns a network client speaking it. Both the in-process loop and
// the network client satisfy the transport-agnostic Client interface, so
// cache code runs unchanged against either (compare examples/realcache and
// examples/netcache):
//
//	srv, err := hipec.Serve("127.0.0.1:0", store,
//	    hipec.WithMaxConns(128), hipec.WithBatchWindow(100*time.Microsecond))
//	...
//	cli, err := hipec.Dial(srv.Addr().String())
//	region, err := cli.Open(64, hipec.WithPolicySource("mru", hipec.PolicyMRUSource(16)))
//	err = cli.WritePage(region, 3, payload)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package hipec

import (
	"hipec/internal/core"
	"hipec/internal/disk/filestore"
	"hipec/internal/emm"
	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/hpl"
	"hipec/internal/kevent"
	"hipec/internal/mem"
	"hipec/internal/pageout"
	"hipec/internal/policies"
	"hipec/internal/server"
	"hipec/internal/simtime"
	"hipec/internal/store"
	"hipec/internal/substrate"
	"hipec/internal/trace"
	"hipec/internal/vm"
)

// Core kernel types.
type (
	// Kernel is the simulated Mach-with-HiPEC kernel.
	Kernel = core.Kernel
	// Config assembles a Kernel.
	Config = core.Config
	// Spec is a complete user policy: event programs plus operand
	// declarations and resource parameters.
	Spec = core.Spec
	// Container is the kernel object recording a specific application's
	// operand array, command buffers and private frame lists.
	Container = core.Container
	// Program is one event's command sequence.
	Program = core.Program
	// Command is one encoded 32-bit HiPEC command.
	Command = core.Command
	// Opcode is the 8-bit HiPEC operator code.
	Opcode = core.Opcode
	// OperandDecl declares an application operand slot.
	OperandDecl = core.OperandDecl
	// ExecCosts calibrates policy-execution time charging.
	ExecCosts = core.ExecCosts
	// ContainerState is a container's lifecycle state.
	ContainerState = core.ContainerState
)

// Container lifecycle states.
const (
	StateActive     = core.StateActive
	StateTerminated = core.StateTerminated
	StateDestroyed  = core.StateDestroyed
	StateRevoked    = core.StateRevoked
)

// Allocation options for Kernel.Allocate / Kernel.Map.
type AllocOption = core.AllocOption

var (
	// WithPolicy places the region under a HiPEC policy (vm_allocate_hipec).
	WithPolicy = core.WithPolicy
	// WithPager backs the region with an external memory manager.
	WithPager = core.WithPager
	// WithRetryBudget overrides the fault path's retry budget per region.
	WithRetryBudget = core.WithRetryBudget
)

// VM substrate types.
type (
	// AddressSpace is a task's virtual address space.
	AddressSpace = vm.AddressSpace
	// MapEntry is one mapped region.
	MapEntry = vm.MapEntry
	// Object is a Mach VM object.
	Object = vm.Object
	// Page is a physical page frame descriptor.
	Page = mem.Page
	// PageQueue is an intrusive list of page frames.
	PageQueue = mem.Queue
	// Policy is the replacement-policy interface the fault handler calls.
	Policy = vm.Policy
	// Fault describes one page fault in flight.
	Fault = vm.Fault
	// VMCosts calibrates the VM layer's time charging.
	VMCosts = vm.Costs
	// PageoutTargets are the default daemon's watermarks.
	PageoutTargets = pageout.Targets
	// Time is virtual time since kernel boot.
	Time = simtime.Time
)

// Kernel event spine (internal/kevent): every subsystem emits typed Event
// records into one stream; consumers implement Sink. Attach sinks at
// construction via Config.Sinks or at runtime via Kernel.Events().Attach.
// The Registry (Kernel.Registry()) aggregates the stream into per-system,
// per-space and per-container counters — the single source of truth behind
// Kernel.Report() and every subsystem's Stats() snapshot.
type (
	// Event is one fixed-layout kernel event record.
	Event = kevent.Event
	// EventType identifies one kind of kernel event.
	EventType = kevent.Type
	// Sink consumes kernel events.
	Sink = kevent.Sink
	// Registry is the metrics view of the event stream.
	Registry = kevent.Registry
	// EventLog is an in-memory event capture sink.
	EventLog = kevent.Log
)

var (
	// NewEventLogWriter builds a streaming event-log sink (see cmd/replaydiff).
	NewEventLogWriter = kevent.NewLogWriter
	// ReadEventLog parses a serialized event log.
	ReadEventLog = kevent.ReadLog
)

// Substrate selection (internal/substrate): the seam between the engine and
// the world it runs in. The zero SubstrateConfig is the deterministic
// simulation; SubstrateReal runs the same engine on wall-clock time.
type (
	// SubstrateConfig selects the substrate a kernel is assembled on
	// (Config.Substrate).
	SubstrateConfig = substrate.Config
	// SubstrateKind names a substrate backend family.
	SubstrateKind = substrate.Kind
	// Store is page-granular backing storage; the realtime substrate
	// accepts a file-backed implementation via SubstrateConfig.Store.
	Store = substrate.Store
	// StoreDeleter is the optional per-key reclamation surface of a Store.
	StoreDeleter = substrate.Deleter
	// FileStore is the realtime substrate's file-backed page store.
	FileStore = filestore.Store
	// TieredStore layers a fast store over a slow one: write-through or
	// write-back, promotion on read, FIFO eviction at the fast-tier cap.
	TieredStore = store.Tiered
	// TieredMode selects a TieredStore's write policy.
	TieredMode = store.TieredMode
	// ShardedStore fans pages out across N child stores by a deterministic
	// hash of the page key.
	ShardedStore = store.Sharded
	// MmapStore is an mmap-backed page store with explicit Sync, degrading
	// to filestore semantics where mmap is unavailable.
	MmapStore = store.Mmap
	// StoreBackend is a Store opened by kind (OpenStore) that also closes
	// and names itself — what the CLI surfaces hand around.
	StoreBackend = store.Backend
	// StoreIOStats is the optional transfer-counter surface of a Store.
	StoreIOStats = store.IOStats
	// StoreSyncer is the optional explicit-durability surface of a Store.
	StoreSyncer = store.Syncer
	// Loop is the actor-style serialized command loop that makes a
	// (typically realtime) kernel safe for concurrent callers. Its typed
	// methods satisfy Client; Call/Async additionally accept closures for
	// in-process callers that need the full kernel.
	Loop = core.Loop
)

// Substrate kinds.
const (
	// SubstrateSim is the deterministic discrete-event simulation (default).
	SubstrateSim = substrate.KindSim
	// SubstrateReal is the wall-clock realtime substrate.
	SubstrateReal = substrate.KindReal
)

// Tiered-store write policies.
const (
	// WriteThrough lands every write on both tiers synchronously.
	WriteThrough = store.WriteThrough
	// WriteBack dirties the fast tier; the slow tier catches up on Sync
	// and eviction.
	WriteBack = store.WriteBack
)

var (
	// NewFileStore opens (truncating) a file-backed page store.
	NewFileStore = filestore.Open
	// NewTempFileStore opens a file-backed page store on a fresh temp file
	// that Close removes.
	NewTempFileStore = filestore.OpenTemp
	// NewTieredStore layers fast over slow with the given mode and
	// fast-tier page cap (<= 0 for unbounded).
	NewTieredStore = store.NewTiered
	// NewShardedStore fans out across the child stores.
	NewShardedStore = store.NewSharded
	// NewMmapStore opens (truncating) an mmap-backed page store.
	NewMmapStore = store.OpenMmap
	// NewTempMmapStore opens an mmap-backed page store on a fresh temp
	// file that Close removes.
	NewTempMmapStore = store.OpenMmapTemp
	// OpenStore opens a backend by kind name — "file", "mem", "tiered",
	// "sharded" or "mmap" — the same selector the CLI -store flags take.
	OpenStore = store.Open
	// InjectStoreFaults wraps a store so a fault plane decides which page
	// transfers fail (hiperr.ErrDiskIO), exercising the recovery ladder.
	InjectStoreFaults = store.InjectFaults
	// ErrLoopClosed is returned by Loop.Call after Loop.Close.
	ErrLoopClosed = core.ErrLoopClosed
)

// Client is the transport-agnostic command surface of a HiPEC cache: open a
// region (optionally under a policy), drive pages by index, snapshot
// counters. Two implementations exist and application code should accept
// the interface so it runs against either:
//
//   - *Loop (NewClient): in-process — every method is one hop through the
//     serialized command loop onto the kernel.
//   - *NetClient (Dial): remote — every method is a wire-protocol exchange
//     with a Serve-d cache; concurrent goroutines pipeline over one
//     connection and the server batches their commands per Loop hop.
//
// Async contract: TouchAsync returns true when the command was ENQUEUED
// (in-process: placed in the loop mailbox; remote: accepted for
// transmission), NOT when it was applied. A command enqueued as the loop or
// connection shuts down may be discarded without running; callers that must
// know their command applied use the synchronous methods.
type Client interface {
	// Open allocates a region of pages pages and returns its handle.
	// WithPolicySource attaches a HiPEC policy, translated and verified
	// where the kernel lives; WithPolicySpec is in-process only.
	Open(pages int, opts ...RegionOption) (RegionID, error)
	// WritePage write-faults one page and stores data (length <=
	// PageSize) at its head.
	WritePage(r RegionID, page int, data []byte) error
	// ReadPage touch-faults one page and copies up to len(buf) payload
	// bytes into buf, returning the count.
	ReadPage(r RegionID, page int, buf []byte) (int, error)
	// TouchPage read-faults one page without moving payload.
	TouchPage(r RegionID, page int) error
	// TouchAsync enqueues a touch and reports whether it was enqueued —
	// see the interface comment for the (non-)guarantee.
	TouchAsync(r RegionID, page int) bool
	// FreeRegion releases a region and everything it holds.
	FreeRegion(r RegionID) error
	// Stats snapshots machine-wide cache counters.
	Stats() (CacheStats, error)
	// PageSize reports the cache's page size in bytes.
	PageSize() int
	// Close releases the client. In-process this stops the command loop;
	// remote it drops the connection and the server frees the session's
	// regions.
	Close()
}

// Client-seam types.
type (
	// RegionID is a session-scoped region handle.
	RegionID = core.RegionID
	// RegionOption configures Client.Open.
	RegionOption = core.RegionOption
	// CacheStats is the Client.Stats counter snapshot.
	CacheStats = core.CacheStats
	// NetClient is the network implementation of Client, returned by Dial.
	NetClient = server.Client
	// Server serves the wire protocol in front of a realtime kernel.
	Server = server.Server
	// ServeOption configures Serve.
	ServeOption = server.Option
)

// Both implementations must keep satisfying the seam.
var (
	_ Client = (*Loop)(nil)
	_ Client = (*NetClient)(nil)
)

var (
	// WithPolicySpec places an opened region under an already-translated
	// policy (in-process clients only).
	WithPolicySpec = core.WithPolicySpec
	// WithPolicySource places an opened region under the policy whose HPL
	// source is given; translation and static verification happen where
	// the kernel lives, so it works across the wire.
	WithPolicySource = core.WithPolicySource
	// WithRegionRetryBudget tunes the opened region's page-in retry budget.
	WithRegionRetryBudget = core.WithRegionRetryBudget

	// WithMaxConns bounds a server's concurrently served connections.
	WithMaxConns = server.WithMaxConns
	// WithMaxBatch bounds how many wire commands one Loop hop applies.
	WithMaxBatch = server.WithMaxBatch
	// WithBatchWindow lets a connection linger for stragglers before
	// submitting a non-full batch.
	WithBatchWindow = server.WithBatchWindow
	// WithFrames sets a served kernel's physical memory in frames.
	WithFrames = server.WithFrames
	// WithBurstFraction sets a served kernel's partition_burst fraction.
	WithBurstFraction = server.WithBurstFraction
)

// NewClient wraps a kernel in a serialized command loop and returns it as
// the in-process Client. The concrete *Loop also exposes Call/Async for
// code that needs closures over the raw kernel; the kernel must not be
// touched outside them from then on.
func NewClient(k *Kernel) *Loop { return core.NewLoop(k) }

// Serve builds a realtime kernel over store (page size taken from the
// store), wraps it in a command loop, and serves the wire protocol on addr
// (":0" picks a port — see Server.Addr). Close the returned server before
// closing the store.
func Serve(addr string, store Store, opts ...ServeOption) (*Server, error) {
	srv := server.New(store, opts...)
	if err := srv.ListenAndServe(addr); err != nil {
		srv.Close()
		return nil, err
	}
	return srv, nil
}

// Dial connects to a Serve-d cache and returns the network Client.
func Dial(addr string) (*NetClient, error) { return server.Dial(addr) }

// New builds a simulated kernel. Zero-valued Config fields take calibrated
// defaults (4 KB pages, the paper's fault/disk cost model, partition_burst
// at 50% of startup free memory).
func New(cfg Config) *Kernel { return core.New(cfg) }

// Translate compiles an HPL pseudo-code policy (the §4.3.4 translator) into
// a Spec.
func Translate(name, src string) (*Spec, error) { return hpl.Translate(name, src) }

// MustTranslate is Translate for known-good embedded policy source.
func MustTranslate(name, src string) *Spec { return hpl.MustTranslate(name, src) }

// Disassemble renders one event program as an annotated Table-2-style
// listing.
func Disassemble(p Program) string { return hpl.Disassemble(p) }

// DisassembleSpec renders every event of a spec.
func DisassembleSpec(s *Spec) string { return hpl.DisassembleSpec(s) }

// Canned policies (internal/policies).
var (
	// PolicyFIFO returns a plain FIFO replacement policy.
	PolicyFIFO = policies.FIFO
	// PolicyLRU returns a least-recently-used policy.
	PolicyLRU = policies.LRU
	// PolicyMRU returns the most-recently-used policy of §5.3.
	PolicyMRU = policies.MRU
	// PolicyFIFOSecondChance returns the paper's Figure 4 policy.
	PolicyFIFOSecondChance = policies.FIFOSecondChance
	// PolicySequentialToss returns a scan-resistant streaming policy.
	PolicySequentialToss = policies.SequentialToss
	// PolicyByName resolves a policy by CLI name.
	PolicyByName = policies.ByName
)

// Canned policy HPL sources: the same policies in their wire-portable form,
// for Client.Open's WithPolicySource (a *Spec does not serialize; source
// does, and is translated and verified server-side).
var (
	// PolicyFIFOSource is the plain FIFO policy's HPL source.
	PolicyFIFOSource = policies.FIFOSource
	// PolicyLRUSource is the LRU policy's HPL source.
	PolicyLRUSource = policies.LRUSource
	// PolicyMRUSource is the §5.3 MRU policy's HPL source.
	PolicyMRUSource = policies.MRUSource
	// PolicyFIFOSecondChanceSource is the Figure 4 policy's HPL source.
	PolicyFIFOSecondChanceSource = policies.FIFOSecondChanceSource
	// PolicySequentialTossSource is the streaming policy's HPL source.
	PolicySequentialTossSource = policies.SequentialTossSource
)

// Reserved event numbers.
const (
	EventPageFault    = core.EventPageFault
	EventReclaimFrame = core.EventReclaimFrame
	EventUser         = core.EventUser
)

// Error is the structured kernel error: every error surfaced by the public
// API wraps one, carrying the operation name, the space/container IDs and
// (for policy faults) the failing command counter. Classify with errors.Is
// against the sentinels below; recover the context with errors.As.
type Error = hiperr.Error

// Error sentinels, matchable through any wrap depth with errors.Is.
var (
	// ErrMinFrame is returned when activation cannot grant the requested
	// minimum frames.
	ErrMinFrame = hiperr.ErrMinFrame
	// ErrDiskIO marks an (injected) paging-device transfer failure.
	ErrDiskIO = hiperr.ErrDiskIO
	// ErrPagerLost marks a remote-pager network loss or timeout.
	ErrPagerLost = hiperr.ErrPagerLost
	// ErrPolicyFault marks a policy runtime fault or activation rejection.
	ErrPolicyFault = hiperr.ErrPolicyFault
	// ErrPolicyRejected marks a registration-time rejection by the static
	// verifier (it wraps ErrPolicyFault, so both sentinels match).
	ErrPolicyRejected = hiperr.ErrPolicyRejected
	// ErrRevoked marks an operation against a revoked (degraded) container.
	ErrRevoked = hiperr.ErrRevoked
	// ErrBadSpec marks a malformed policy spec (bad operand declarations).
	ErrBadSpec = hiperr.ErrBadSpec
	// ErrBadOperand marks host access to a policy operand that does not
	// exist, has the wrong kind, or cannot be written.
	ErrBadOperand = hiperr.ErrBadOperand
	// ErrBadRequest marks a malformed command on the client seam (unknown
	// region handle, page index out of range, oversized payload). It
	// round-trips the wire: a remote rejection still matches errors.Is.
	ErrBadRequest = hiperr.ErrBadRequest
)

// Fault injection (internal/faultinj): the deterministic chaos plane.
// Configure via Config.Faults; a zero Seed disables injection entirely.
type (
	// FaultConfig seeds and scopes the fault-injection plane.
	FaultConfig = faultinj.Config
	// FaultRule sets failure/latency rates for one injection class.
	FaultRule = faultinj.Rule
	// FaultPlane is the seeded deterministic decision source.
	FaultPlane = faultinj.Plane
	// RetryPolicy bounds the VM fault path's page-in retries.
	RetryPolicy = vm.Retry
)

// External memory management (internal/emm): user-level pagers behind the
// Mach EMM interface.
type (
	// Pager supplies and receives memory-object contents (Mach EMM).
	Pager = vm.Pager
	// StorePager is a user-level default pager (disk-backed).
	StorePager = emm.StorePager
	// RemotePager pages to remote memory over a modeled network.
	RemotePager = emm.RemotePager
	// CompressingPager keeps evicted pages deflate-compressed in memory.
	CompressingPager = emm.CompressingPager
	// FailoverPager pairs a lossy primary pager with a durable fallback
	// mirror and fails over after repeated primary losses.
	FailoverPager = emm.FailoverPager
	// BackendPager adapts any Store into a Pager, so real backends
	// (tiered, sharded, mmap) slot into the EMM recovery ladder.
	BackendPager = emm.BackendPager
)

var (
	// NewStorePager builds a disk-backed user-level pager.
	NewStorePager = emm.NewStorePager
	// NewBackendPager wraps a Store as a Pager.
	NewBackendPager = emm.NewBackendPager
	// NewRemotePager builds a remote-memory pager.
	NewRemotePager = emm.NewRemotePager
	// NewCompressingPager builds a compressed-memory pager.
	NewCompressingPager = emm.NewCompressingPager
	// NewFailoverPager builds a primary+fallback pager pair.
	NewFailoverPager = emm.NewFailoverPager
)

// Trace analysis (internal/trace): page-reference traces, replay, and the
// Belady-optimal baseline.
type (
	// Trace is a page-reference string.
	Trace = trace.Trace
	// TraceRecord is one page reference.
	TraceRecord = trace.Record
)

var (
	// ReadTrace parses a serialized trace.
	ReadTrace = trace.Read
	// ReplayTrace drives a trace against a mapped region.
	ReplayTrace = trace.Replay
	// OptimalFaults computes Belady's OPT fault count — the lower bound
	// no replacement policy can beat.
	OptimalFaults = trace.OPT
	// LRUFaults computes exact-LRU fault counts for a trace.
	LRUFaults = trace.LRU
	// AnalyzeTrace summarizes a trace (unique pages, reuse distances).
	AnalyzeTrace = trace.Analyze
)
