// Remotemem: composing the two Mach extension axes the paper discusses —
// WHERE memory-object data lives (the EMM external pager interface, §2/§4)
// and WHO decides replacement (HiPEC, the paper's contribution).
//
// The nested-loop join's outer table is paged over the network to a
// remote-memory server (1 ms RTT — a mid-90s ATM/FDDI cluster) instead of
// the ~7.7 ms local paging disk, while a HiPEC MRU policy minimizes how
// often that transfer happens at all. Each mechanism helps independently;
// together they compound.
//
// Run with: go run ./examples/remotemem
package main

import (
	"fmt"
	"log"
	"time"

	"hipec"
	"hipec/internal/machipc"
)

func main() {
	const (
		pageSize   = 4096
		outerPages = 3 * 1024 // 12 MB outer table
		poolPages  = 2 * 1024 // 8 MB cache
		scans      = 16
	)

	type config struct {
		name   string
		remote bool   // remote-memory pager vs local disk
		policy string // lru (conventional) vs mru (HiPEC-smart)
	}
	configs := []config{
		{"local disk + LRU (conventional)", false, "lru"},
		{"remote memory + LRU", true, "lru"},
		{"local disk + HiPEC MRU", false, "mru"},
		{"remote memory + HiPEC MRU", true, "mru"},
	}

	fmt.Printf("join-style scan: %d sweeps over %d pages, %d-page cache\n\n", scans, outerPages, poolPages)
	for _, cfg := range configs {
		k := hipec.New(hipec.Config{Frames: 8192, KeepData: false, StartChecker: true})
		obj := k.VM.NewObject(outerPages*pageSize, true)

		opts := []hipec.AllocOption{}
		if cfg.remote {
			ipc := machipc.New(k.Clock, machipc.Costs{})
			pager := hipec.NewRemotePager("memserver", k.Clock, ipc, time.Millisecond, 100*time.Nanosecond, pageSize)
			// The remote server already holds the table. (Priming it this
			// way charges the clock; measure from after the loop.)
			for off := int64(0); off < obj.Size; off += pageSize {
				pager.DataReturn(obj.ID, off, nil)
			}
			opts = append(opts, hipec.WithPager(pager))
		} else {
			if err := k.VM.Populate(obj, nil); err != nil { // on the local paging disk
				log.Fatal(err)
			}
		}

		task := k.NewSpace()
		spec, err := hipec.PolicyByName(cfg.policy, poolPages)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, hipec.WithPolicy(spec))
		region, container, err := k.Map(task, obj, 0, obj.Size, opts...)
		if err != nil {
			log.Fatal(err)
		}

		start := k.Clock.Now()
		for s := 0; s < scans; s++ {
			for addr := region.Start; addr < region.End; addr += pageSize {
				if _, err := task.Touch(addr); err != nil {
					log.Fatal(err)
				}
			}
		}
		elapsed := time.Duration(k.Clock.Now().Sub(start))
		fmt.Printf("%-34s %9.2fs elapsed, %7d page-ins\n",
			cfg.name+":", elapsed.Seconds(), task.Stats().PageIns)
		if container.State() != hipec.StateActive {
			log.Fatalf("policy died: %s", container.TerminationReason())
		}
	}

	fmt.Println("\nremote memory cuts the cost of each page-in; the HiPEC MRU policy cuts")
	fmt.Println("how many page-ins happen. The combination is fastest.")
}
