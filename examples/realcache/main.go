// Realcache: the HiPEC engine as a live cache. The same kernel that
// reproduces the paper's 1994 numbers boots here on the realtime substrate:
// wall-clock time, frames carrying real 4 KB payloads, and a file-backed
// page store doing genuine I/O. N client goroutines hammer one cache
// concurrently through the serialized command loop — the actor mailbox is
// the only synchronization; inside, the kernel is the same single-writer
// engine the simulation runs.
//
// Each client owns one region under the paper's Figure 4 policy (FIFO with
// a second chance) sized to overflow its frame grant, so a working set
// bigger than memory keeps pages round-tripping through the backing file.
// Clients stamp every page and verify the payload whenever a page comes
// back from the store.
//
// Run with: go run ./examples/realcache
// Race-check with: go run -race ./examples/realcache
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"hipec"
)

const (
	clients  = 8
	pages    = 96 // per client; frame grant is 16, so the file works hard
	rounds   = 3
	pageSize = 4096
)

func main() {
	// The backing store is a real file; Close removes it.
	store, err := hipec.NewTempFileStore("", pageSize)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	fmt.Printf("backing store: %s\n", store.Path())

	// Half the fleet's total working set fits in memory: the rest lives in
	// the file and pages in and out on demand.
	k := hipec.New(hipec.Config{
		Frames:        clients * pages / 2,
		PageSize:      pageSize,
		BurstFraction: 0.5,
		Substrate: hipec.SubstrateConfig{
			Kind:  hipec.SubstrateReal,
			Store: store,
		},
	})
	loop := hipec.NewLoop(k)
	defer loop.Close()

	// The paper's Figure 4 policy — FIFO with a second chance — translated
	// from its HPL source, now deciding evictions for a real cache.
	spec := hipec.PolicyFIFOSecondChance(16)

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	verified, misses := 0, 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var task *hipec.AddressSpace
			var base int64
			if err := loop.Call(func(k *hipec.Kernel) error {
				task = k.NewSpace()
				region, _, err := k.Allocate(task, pages*pageSize, hipec.WithPolicy(spec))
				if err != nil {
					return err
				}
				base = region.Start
				return nil
			}); err != nil {
				log.Fatalf("client %d: %v", id, err)
			}
			stamp := byte(id + 1)
			for round := 0; round < rounds; round++ {
				for i := 0; i < pages; i++ {
					addr := base + int64(i)*pageSize
					pageNo := byte(i)
					err := loop.Call(func(k *hipec.Kernel) error {
						p, err := task.Write(addr)
						if err != nil {
							return err
						}
						if round == 0 {
							p.Data[0], p.Data[1] = stamp, pageNo
							return nil
						}
						if p.Data[0] != stamp || p.Data[1] != pageNo {
							return fmt.Errorf("client %d page %d: payload corrupt: % x", id, i, p.Data[:2])
						}
						mu.Lock()
						verified++
						mu.Unlock()
						return nil
					})
					if err != nil {
						log.Fatalf("client %d: %v", id, err)
					}
				}
			}
			// A few read-only probes of the hot tail: hits are served
			// without touching the file.
			for i := pages - 4; i < pages; i++ {
				addr := base + int64(i)*pageSize
				if err := loop.Call(func(k *hipec.Kernel) error {
					_, err := task.Touch(addr)
					return err
				}); err != nil {
					mu.Lock()
					misses++
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := loop.Call(func(k *hipec.Kernel) error {
		s := k.VM.Stats()
		fmt.Printf("%d clients x %d pages x %d rounds in %v (wall clock)\n",
			clients, pages, rounds, elapsed.Round(time.Millisecond))
		fmt.Printf("  accesses %d: %d hits, %d faults (%d page-ins, %d zero-fills)\n",
			s.Accesses, s.Hits, s.Faults, s.PageIns, s.ZeroFills)
		fmt.Printf("  page-outs %d; store now holds %d pages (%d reads, %d writes)\n",
			s.PageOuts, store.Len(), store.Reads, store.Writes)
		fmt.Printf("  payload integrity: %d pages verified after store round trips\n", verified)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if misses > 0 {
		log.Fatalf("%d hot-tail probes failed", misses)
	}
}
