// Realcache: the HiPEC engine as a live cache. The same kernel that
// reproduces the paper's 1994 numbers boots here on the realtime substrate:
// wall-clock time, frames carrying real 4 KB payloads, and a file-backed
// page store doing genuine I/O. N client goroutines hammer one cache
// concurrently through the serialized command loop — the actor mailbox is
// the only synchronization; inside, the kernel is the same single-writer
// engine the simulation runs.
//
// The workload itself lives in internal/demo and is written against the
// transport-agnostic hipec.Client seam: this binary hands it the in-process
// client, examples/netcache hands it the wire client, and the two run the
// same stamp/verify rounds. Each client owns one region under the paper's
// Figure 4 policy (FIFO with a second chance) sized to overflow its frame
// grant, so a working set bigger than memory keeps pages round-tripping
// through the backing file.
//
// Run with: go run ./examples/realcache
// Race-check with: go run -race ./examples/realcache
package main

import (
	"flag"
	"fmt"
	"log"

	"hipec"
	"hipec/internal/demo"
)

const pageSize = 4096

func main() {
	cfg := demo.Flags(flag.CommandLine, demo.Config{Clients: 8, Pages: 96, Rounds: 3, Pool: 16})
	storeKind := flag.String("store", "file", "store backend: file, mem, tiered, sharded, mmap")
	storePath := flag.String("store-path", "", "backing store file or stem (default: fresh temp files, removed on exit)")
	flag.Parse()

	// The backing store does real I/O; Close removes temp stores.
	store, err := hipec.OpenStore(*storeKind, *storePath, pageSize)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	fmt.Printf("backing store: %s\n", store.Label())

	// Half the fleet's total working set fits in memory: the rest lives in
	// the file and pages in and out on demand.
	k := hipec.New(hipec.Config{
		Frames:        cfg.KernelFrames(),
		PageSize:      pageSize,
		BurstFraction: 0.5,
		Substrate: hipec.SubstrateConfig{
			Kind:  hipec.SubstrateReal,
			Store: store,
		},
	})
	client := hipec.NewClient(k)
	defer client.Close()

	// Every demo client shares the one in-process Client; the mailbox
	// serializes them.
	res, err := demo.Run(*cfg, func(int) (hipec.Client, func(), error) {
		return client, func() {}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report(*cfg, "in-process"))
	if io, ok := store.(hipec.StoreIOStats); ok {
		reads, writes := io.StoreIO()
		fmt.Printf("  store I/O: %d reads, %d writes\n", reads, writes)
	}
}
