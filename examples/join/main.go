// Join: the paper's §5.3 database experiment as a library user would write
// it — a nested-loop join whose outer table is managed by a HiPEC MRU
// policy, compared against the LRU-like policy of a conventional kernel.
//
// The inner table (4 KB, 64 tuples) is pinned; the outer table is scanned
// once per inner tuple. With an LRU cache smaller than the outer table,
// every scan faults on every page (sequential flooding); MRU keeps a stable
// prefix resident and only re-reads the tail.
//
// Run with: go run ./examples/join [-outer-mb 48] [-mem-mb 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"hipec"
)

func main() {
	outerMB := flag.Int64("outer-mb", 48, "outer table size in MB")
	memMB := flag.Int64("mem-mb", 40, "memory allocated to the outer table in MB")
	flag.Parse()

	const (
		pageSize  = 4096
		tupleSize = 64
		innerSize = 4 << 10
	)
	outerBytes := *outerMB << 20
	poolFrames := int(*memMB << 20 / pageSize)
	loops := innerSize / tupleSize // one outer scan per inner tuple

	fmt.Printf("nested-loop join: outer %d MB, inner %d B (%d scans), cache %d MB\n\n",
		*outerMB, innerSize, loops, *memMB)

	for _, policy := range []string{"lru", "mru"} {
		k := hipec.New(hipec.Config{Frames: 16384, StartChecker: true})
		task := k.NewSpace()

		// The outer table is a disk-resident file mapped through HiPEC.
		outer := k.VM.NewObject(outerBytes, false)
		if err := k.VM.Populate(outer, nil); err != nil {
			log.Fatal(err)
		}
		spec, err := hipec.PolicyByName(policy, poolFrames)
		if err != nil {
			log.Fatal(err)
		}
		region, container, err := k.Map(task, outer, 0, outer.Size, hipec.WithPolicy(spec))
		if err != nil {
			log.Fatal(err)
		}

		// The pinned inner table: a wired 4 KB region.
		innerRegion, err := task.Allocate(innerSize)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := task.WireRange(innerRegion); err != nil {
			log.Fatal(err)
		}

		// Drive the join at page granularity: every outer page is
		// touched once per scan (tuple accesses within a page hit).
		start := k.Clock.Now()
		for scan := 0; scan < loops; scan++ {
			for addr := region.Start; addr < region.End; addr += pageSize {
				if _, err := task.Touch(addr); err != nil {
					log.Fatal(err)
				}
			}
		}
		elapsed := time.Duration(k.Clock.Now().Sub(start))

		fmt.Printf("%-4s policy: elapsed %8.2f min, faults %8d, page-ins %8d",
			policy, elapsed.Minutes(), task.Stats().Faults, task.Stats().PageIns)
		if container.State() != hipec.StateActive {
			fmt.Printf("  [policy died: %s]", container.TerminationReason())
		}
		fmt.Println()
	}

	fmt.Println("\n(paper Figure 6: the gap opens once the outer table exceeds the cache)")
}
