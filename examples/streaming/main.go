// Streaming: a multimedia-style single-pass workload (one of the paper's
// motivating application classes, §1). A video server reads a large media
// file strictly sequentially; caching it with the default LRU-like policy
// evicts every other application's pages for data that will never be read
// again. A HiPEC "sequential toss" policy caps the stream at a small
// private pool and recycles its own frames, leaving the rest of memory
// untouched.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"hipec"
)

func main() {
	const (
		pageSize   = 4096
		fileMB     = 48       // media file size
		streamPool = 32       // private frames for the stream
		hotPages   = 6 * 1024 // an interactive app's 24 MB working set
	)

	for _, useHiPEC := range []bool{false, true} {
		k := hipec.New(hipec.Config{Frames: 8192, StartChecker: useHiPEC}) // 32 MB machine
		interactive := k.NewSpace()
		streamer := k.NewSpace()

		// The interactive application warms up its working set.
		hot, err := interactive.Allocate(hotPages * pageSize)
		if err != nil {
			log.Fatal(err)
		}
		for addr := hot.Start; addr < hot.End; addr += pageSize {
			interactive.Touch(addr)
		}
		warmFaults := interactive.Stats().Faults

		// The media file lives on disk.
		media := k.VM.NewObject(fileMB<<20, false)
		if err := k.VM.Populate(media, nil); err != nil {
			log.Fatal(err)
		}

		var region *hipec.MapEntry
		if useHiPEC {
			spec := hipec.PolicySequentialToss(streamPool)
			region, _, err = k.Map(streamer, media, 0, media.Size, hipec.WithPolicy(spec))
		} else {
			region, err = streamer.Map(media, 0, media.Size)
		}
		if err != nil {
			log.Fatal(err)
		}

		// Stream the file once.
		for addr := region.Start; addr < region.End; addr += pageSize {
			if _, err := streamer.Touch(addr); err != nil {
				log.Fatal(err)
			}
		}
		// Now the interactive application resumes: how much of its
		// working set did the stream blow away?
		for addr := hot.Start; addr < hot.End; addr += pageSize {
			interactive.Touch(addr)
		}
		refaults := interactive.Stats().Faults - warmFaults

		mode := "default LRU-like kernel policy"
		if useHiPEC {
			mode = fmt.Sprintf("HiPEC sequential-toss (%d-frame pool)", streamPool)
		}
		fmt.Printf("%-42s stream faults %6d, working-set re-faults %5d/%d\n",
			mode+":", streamer.Stats().Faults, refaults, hotPages)
	}

	fmt.Println("\nwith HiPEC the stream recycles its own frames, so the interactive")
	fmt.Println("working set survives; under the shared pool it gets flushed.")
}
