// Quickstart: boot a simulated kernel, register a custom page-replacement
// policy written in HPL, and watch it handle faults on a private frame pool.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hipec"
)

const policySource = `
// A most-recently-used policy: when the private free list runs dry, evict
// the page we touched last. Perfect for cyclic scans, terrible for hot
// loops — that is the point of application-specific caching.
minframe = 64
access_order = 1

event PageFault() {
    if (empty(_free_queue)) {
        mru(_active_queue)
    }
    page = dequeue_head(_free_queue)
    return page
}

event ReclaimFrame() {
    if (empty(_free_queue)) { fifo(_active_queue) }
    if (!empty(_free_queue)) { release(1) }
    return
}
`

func main() {
	// A 64 MB machine with 4 KB pages, timing calibrated to the paper's
	// 1994 testbed. Everything runs on a deterministic virtual clock.
	k := hipec.New(hipec.Config{Frames: 16384, StartChecker: true})
	task := k.NewSpace()

	// Translate the pseudo-code policy (the paper's §4.3.4 translator)
	// and print its compiled command stream, Table-2 style.
	spec, err := hipec.Translate("quickstart-mru", policySource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(hipec.DisassembleSpec(spec))

	// vm_allocate_hipec(): a 2 MB region managed by our policy with a
	// guaranteed private pool of 64 frames.
	region, container, err := k.Allocate(task, 2<<20, hipec.WithPolicy(spec))
	if err != nil {
		log.Fatal(err)
	}

	// Sweep the region three times: 512 pages through a 64-frame pool.
	const pageSize = 4096
	for sweep := 1; sweep <= 3; sweep++ {
		for addr := region.Start; addr < region.End; addr += pageSize {
			if _, err := task.Touch(addr); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("sweep %d: faults so far %5d, virtual time %v\n",
			sweep, task.Stats().Faults, k.Clock.Now())
	}

	fmt.Printf("\npolicy executions: %d (%d commands interpreted, %.1f per fault)\n",
		container.Stats().Activations, container.Stats().Commands,
		float64(container.Stats().Commands)/float64(container.Stats().Activations))
	fmt.Printf("private pool: %d frames (resident %d + free %d)\n",
		container.Allocated(), container.Active.Len()+container.Inactive.Len(), container.Free.Len())
	fmt.Printf("container state: %v\n", container.State())
}
