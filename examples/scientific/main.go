// Scientific: an out-of-core simulation sweep (the paper's third motivating
// class, citing McDonald's particle simulator). The solver makes repeated
// passes over a state array larger than memory — the same cyclic pattern
// that defeats LRU — and additionally shows the Migrate extension (§6
// future work #1) moving frames between two cooperating phases.
//
// Run with: go run ./examples/scientific
package main

import (
	"fmt"
	"log"
	"time"

	"hipec"
)

const solverPolicy = `
// Cyclic sweeps over a state array: MRU keeps a stable prefix.
minframe = 3072
access_order = 1

event PageFault() {
    if (empty(_free_queue)) {
        mru(_active_queue)
    }
    page = dequeue_head(_free_queue)
    return page
}

event ReclaimFrame() {
    if (empty(_free_queue)) { fifo(_active_queue) }
    if (!empty(_free_queue)) { release(1) }
    return
}
`

func main() {
	const (
		pageSize   = 4096
		statePages = 6144 // 24 MB state array on a 16 MB machine
		sweeps     = 8
	)

	run := func(policyName string, spec *hipec.Spec) (time.Duration, int64) {
		k := hipec.New(hipec.Config{Frames: 4096, StartChecker: true})
		task := k.NewSpace()
		var region *hipec.MapEntry
		var err error
		if spec != nil {
			region, _, err = k.Allocate(task, statePages*pageSize, hipec.WithPolicy(spec))
		} else {
			region, err = task.Allocate(statePages * pageSize)
		}
		if err != nil {
			log.Fatal(err)
		}
		start := k.Clock.Now()
		for s := 0; s < sweeps; s++ {
			for addr := region.Start; addr < region.End; addr += pageSize {
				// Read-modify-write each state page.
				if _, err := task.Write(addr); err != nil {
					log.Fatal(err)
				}
			}
		}
		return time.Duration(k.Clock.Now().Sub(start)), task.Stats().Faults
	}

	spec, err := hipec.Translate("solver-mru", solverPolicy)
	if err != nil {
		log.Fatal(err)
	}
	// The state array exceeds physical memory, so the default FIFO-with-
	// second-chance policy degenerates to faulting on every page of every
	// sweep (cyclic flooding); the MRU policy keeps a 3072-page prefix
	// permanently resident and only re-reads the tail.
	lruElapsed, lruFaults := run("default", nil)
	mruElapsed, mruFaults := run("hipec-mru", spec)

	fmt.Printf("out-of-core solver, %d sweeps over %d pages (machine: 4096 frames):\n", sweeps, statePages)
	fmt.Printf("  default kernel : %8.1fs elapsed, %6d faults\n", lruElapsed.Seconds(), lruFaults)
	fmt.Printf("  HiPEC MRU      : %8.1fs elapsed, %6d faults (%.2fx faster)\n",
		mruElapsed.Seconds(), mruFaults, lruElapsed.Seconds()/mruElapsed.Seconds())

	// --- Migrate extension demo -----------------------------------------
	fmt.Println("\nframe migration between cooperating phases (§6 extension):")
	k := hipec.New(hipec.Config{Frames: 4096})
	task := k.NewSpace()
	producerSpec, err := hipec.Translate("producer", `
minframe = 128
extensions = 1
var partner = 0
var donated = 0
page donation

event PageFault() {
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() {
    if (!empty(_free_queue)) { release(1) }
    return
}
event Donate() {
    /* hand 16 frames to the consumer phase */
    donated = 0
    while (donated < 16 && !empty(_free_queue)) {
        donation = dequeue_head(_free_queue)
        migrate(donation, partner)
        donated = donated + 1
    }
    return donated
}
`)
	if err != nil {
		log.Fatal(err)
	}
	_, producer, err := k.Allocate(task, 128*pageSize, hipec.WithPolicy(producerSpec))
	if err != nil {
		log.Fatal(err)
	}
	_, consumer, err := k.Allocate(task, 128*pageSize, hipec.WithPolicy(hipec.PolicyFIFO(64)))
	if err != nil {
		log.Fatal(err)
	}
	// Tell the producer who its partner is, then fire the Donate event.
	if err := producer.SetIntOperand("partner", int64(consumer.ID)); err != nil {
		log.Fatal(err)
	}
	before := consumer.Allocated()
	if _, err := k.Executor.Run(producer, hipec.EventUser); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  consumer pool grew %d -> %d frames (producer now %d)\n",
		before, consumer.Allocated(), producer.Allocated())
}
