// Netcache: the networked twin of examples/realcache. The same stamp/verify
// workload (internal/demo), the same kernel, the same policy — but every
// client is a real TCP connection speaking the HiPEC wire protocol to a
// server fronting the serialized command loop. Concurrent clients pipeline
// frames over their connections and the server batches each connection's
// backlog into single Loop hops, so the network layer amortizes the mailbox
// crossing exactly the way the in-process path cannot.
//
// By default the server runs in-process on a loopback listener so the
// example is self-contained; point -addr at a running hipecd (cmd/hipecd)
// to drive a remote cache instead.
//
// Run with: go run ./examples/netcache
// Race-check with: go run -race ./examples/netcache
package main

import (
	"flag"
	"fmt"
	"log"

	"hipec"
	"hipec/internal/demo"
)

const pageSize = 4096

func main() {
	cfg := demo.Flags(flag.CommandLine, demo.Config{Clients: 8, Pages: 96, Rounds: 3, Pool: 16})
	addr := flag.String("addr", "", "existing hipecd address (default: spawn an in-process loopback server)")
	storeKind := flag.String("store", "file", "store backend for the in-process server: file, mem, tiered, sharded, mmap")
	storePath := flag.String("store-path", "", "backing store file or stem for the in-process server (default: fresh temp files)")
	flag.Parse()

	target := *addr
	if target == "" {
		// Self-contained mode: boot a server on a loopback listener.
		store, err := hipec.OpenStore(*storeKind, *storePath, pageSize)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()

		srv, err := hipec.Serve("127.0.0.1:0", store,
			hipec.WithFrames(cfg.KernelFrames()),
			hipec.WithBurstFraction(0.5))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		target = srv.Addr().String()
		fmt.Printf("serving %s store on %s\n", store.Label(), target)
	}

	// Every demo client dials its own TCP connection.
	res, err := demo.Run(*cfg, func(int) (hipec.Client, func(), error) {
		c, err := hipec.Dial(target)
		if err != nil {
			return nil, nil, err
		}
		return c, c.Close, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report(*cfg, "networked"))
}
