// Command hipecdis disassembles a binary HiPEC policy produced by
// hipecc -o, printing the Table-2-style annotated listing of every event.
//
// Usage:
//
//	hipecdis policy.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"hipec/internal/core"
	"hipec/internal/hpl"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hipecdis policy.bin")
		os.Exit(1)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hipecdis:", err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := hpl.DecodeBinary(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hipecdis:", err)
		os.Exit(1)
	}
	for i, prog := range events {
		if len(prog) == 0 {
			continue
		}
		name := fmt.Sprintf("event%d", i)
		switch i {
		case core.EventPageFault:
			name = "PageFault"
		case core.EventReclaimFrame:
			name = "ReclaimFrame"
		}
		fmt.Printf("# The %s Event\n%s\n", name, hpl.Disassemble(prog))
	}
}
