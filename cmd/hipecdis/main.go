// Command hipecdis disassembles a binary HiPEC policy produced by
// hipecc -o, printing the Table-2-style annotated listing of every event.
//
// Usage:
//
//	hipecdis [-lint] policy.bin
//
// With -lint the static verifier (internal/hpl/verify) runs over the
// decoded programs in kind-inference mode and each event's listing is
// followed by its diagnostics; error-severity findings set exit status 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"hipec/internal/core"
	"hipec/internal/hpl"
	"hipec/internal/hpl/verify"
)

func main() {
	lint := flag.Bool("lint", false, "annotate the listing with static-verifier diagnostics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hipecdis [-lint] policy.bin")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hipecdis:", err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := hpl.DecodeBinary(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hipecdis:", err)
		os.Exit(1)
	}

	var diags []verify.Diagnostic
	if *lint {
		u := verify.NewUnit(flag.Arg(0))
		u.Events = events
		u.Extensions = true
		diags = verify.Analyze(u)
	}

	for i, prog := range events {
		if len(prog) == 0 {
			continue
		}
		name := fmt.Sprintf("event%d", i)
		switch i {
		case core.EventPageFault:
			name = "PageFault"
		case core.EventReclaimFrame:
			name = "ReclaimFrame"
		}
		fmt.Printf("# The %s Event\n%s", name, hpl.Disassemble(prog))
		for _, d := range diags {
			if d.Event == i {
				fmt.Printf("  ! %s\n", d)
			}
		}
		fmt.Println()
	}
	for _, d := range diags {
		if d.Event < 0 {
			fmt.Printf("! %s\n", d)
		}
	}
	if verify.HasErrors(diags) {
		os.Exit(1)
	}
}
