// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5) and prints them next to the published numbers.
//
// Usage:
//
//	experiments                 # run everything at paper scale
//	experiments -run table3     # one experiment: table3, table4, figure5, figure6
//	experiments -run figure6 -scale 64   # scaled-down quick look
//	experiments -quick          # everything, scaled for a fast smoke run
//	experiments -j 4            # fan sweep cells out over 4 workers
//	experiments -bench-json BENCH_0001.json   # write host perf numbers
//	experiments -event-log run.kevlog         # capture the smoke workload's
//	                                          # kernel event stream (see
//	                                          # cmd/replaydiff)
//	experiments -chaos seed=3           # seeded fault-injection soak with
//	                                    # invariant checks; add -event-log
//	                                    # to capture its event stream
//
// Sweeps fan out over a worker pool (every cell simulates its own kernel
// on its own virtual clock), so -j only changes wall-clock time: the
// printed tables and figures are byte-identical at any parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hipec/internal/bench"
	"hipec/internal/kevent"
	"hipec/internal/simtime"
)

func main() {
	var (
		run       = flag.String("run", "all", "which experiment: all, table3, table4, figure5, figure6, ablation")
		scale     = flag.Int64("scale", 1, "divide figure6 sizes by this factor for quick runs")
		quick     = flag.Bool("quick", false, "scale everything down for a fast smoke run")
		users     = flag.Int("users", 15, "maximum simulated users for figure5")
		jobs      = flag.Int("jobs", 6, "jobs per user for figure5")
		workers   = flag.Int("j", 0, "sweep worker count (0 = GOMAXPROCS); output is identical at any -j")
		benchJSON = flag.String("bench-json", "", "measure host performance (sweep cells/sec, executor ns/command, allocs) and write the JSON report to this file")
		eventLog  = flag.String("event-log", "", "run the deterministic smoke workload and write its kernel event log to this file (diff two runs with cmd/replaydiff)")
		chaos     = flag.String("chaos", "", "run the seeded chaos soak (fault injection + graceful degradation): \"seed=N\" or a bare seed number")
		shards    = flag.Int("shards", 0, "run N independent kernels on N goroutines (the sharded scale harness) and print merged metrics; with -event-log, capture shard 0's stream")
		shardSeed = flag.Uint64("shard-seed", 0, "master seed for the sharded harness's per-shard scatter phases (0 = every shard runs the canonical workload)")
		shardSer  = flag.Bool("shard-serial", false, "run the shards sequentially on one goroutine (results are identical; only wall time changes)")
		timer     = flag.String("timer", "", "simtime scheduler backend: wheel (default) or heap (reference implementation)")
		substr    = flag.String("substrate", "sim", "substrate: sim (deterministic virtual time) or real (wall clock, real page store, concurrent clients)")
		storeKind = flag.String("store", "file", "real-substrate store backend: file, mem, tiered, sharded, mmap")
	)
	flag.Parse()
	bench.SetParallelism(*workers)

	if *timer != "" {
		sched, ok := simtime.SchedulerByName(*timer)
		if !ok {
			fmt.Fprintf(os.Stderr, "timer: unknown scheduler %q (want wheel or heap)\n", *timer)
			os.Exit(1)
		}
		simtime.SetDefaultScheduler(sched)
	}

	if *substr != "" && *substr != "sim" {
		if *substr != "real" {
			fmt.Fprintf(os.Stderr, "substrate: unknown substrate %q (want sim or real)\n", *substr)
			os.Exit(1)
		}
		cfg := bench.DefaultRealtime()
		cfg.StoreKind = *storeKind
		if *quick {
			cfg.PagesPerClient = 16
			cfg.Rounds = 2
		}
		res, err := bench.RunRealtime(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "substrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Format())
		return
	}

	if *shards > 0 {
		cfg := bench.ShardedConfig{
			Shards: *shards,
			Seed:   *shardSeed,
			Quick:  *quick,
			Serial: *shardSer,
		}
		var lw *kevent.LogWriter
		var f *os.File
		if *eventLog != "" {
			var err error
			f, err = os.Create(*eventLog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "shards: %v\n", err)
				os.Exit(1)
			}
			lw = kevent.NewLogWriter(f)
			cfg.Shard0Sink = lw
		}
		res, err := bench.RunSharded(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shards: %v\n", err)
			os.Exit(1)
		}
		if lw != nil {
			if err := lw.Flush(); err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "shards: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("captured %d shard-0 kernel events to %s\n", lw.Events(), *eventLog)
		}
		fmt.Print(res.Format())
		return
	}

	if *chaos != "" {
		seedStr := strings.TrimPrefix(*chaos, "seed=")
		seed, err := strconv.ParseUint(seedStr, 10, 64)
		if err != nil || seed == 0 {
			fmt.Fprintf(os.Stderr, "chaos: bad seed %q (want -chaos seed=N with N > 0)\n", *chaos)
			os.Exit(1)
		}
		if *eventLog != "" {
			f, err := os.Create(*eventLog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(1)
			}
			n, err := bench.CaptureChaosLog(f, seed, *quick)
			if err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("captured %d kernel events to %s\n", n, *eventLog)
			return
		}
		cfg := bench.DefaultChaos(seed)
		if *quick {
			cfg = bench.QuickChaos(seed)
		}
		rep, err := bench.RunChaos(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		return
	}

	if *eventLog != "" {
		f, err := os.Create(*eventLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "event-log: %v\n", err)
			os.Exit(1)
		}
		n, err := bench.CaptureEventLog(f, *quick)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "event-log: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("captured %d kernel events to %s\n", n, *eventLog)
		return
	}

	if *benchJSON != "" {
		r, err := bench.MeasurePerf()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchJSON, []byte(r.JSON()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(r.JSON())
		return
	}

	start := time.Now()
	ok := true
	runOne := func(name string, fn func() error) {
		if *run != "all" && *run != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		t0 := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			ok = false
			return
		}
		fmt.Printf("(%s completed in %v wall time)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	runOne("table3", func() error {
		cfg := bench.DefaultTable3()
		if *quick {
			cfg.RegionBytes = 4 << 20
			cfg.Frames = 4096
		}
		r, err := bench.RunTable3(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})

	runOne("table4", func() error {
		iters := 200000
		if *quick {
			iters = 5000
		}
		r, err := bench.RunTable4(iters)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})

	runOne("figure5", func() error {
		cfg := bench.DefaultFigure5()
		if *users > 0 {
			cfg.UserCounts = cfg.UserCounts[:0]
			for i := 1; i <= *users; i++ {
				cfg.UserCounts = append(cfg.UserCounts, i)
			}
		}
		cfg.JobsPerUser = *jobs
		if *quick {
			cfg.UserCounts = []int{1, 2, 4, 8}
			cfg.JobsPerUser = 2
			cfg.Frames = 2048
		}
		series, err := bench.RunFigure5(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFigure5(series))
		return nil
	})

	runOne("figure6", func() error {
		cfg := bench.DefaultFigure6()
		cfg.Scale = *scale
		if *quick && *scale == 1 {
			cfg.Scale = 256
		}
		points, err := bench.RunFigure6(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFigure6(points, cfg.Scale))
		return nil
	})

	runOne("ablation", func() error {
		s := *scale
		if *quick && s == 1 {
			s = 256
		}
		rows, err := bench.RunMechanismAblation(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatMechanismAblation(rows, s))
		return nil
	})

	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	if !ok {
		os.Exit(1)
	}
}
