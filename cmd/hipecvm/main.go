// Command hipecvm runs a HiPEC policy against a synthetic workload on the
// simulated kernel and reports fault statistics and virtual elapsed time —
// a quick way to compare replacement policies on an access pattern.
//
// Usage:
//
//	hipecvm -policy mru -workload cyclic -pages 2048 -pool 512 -accesses 100000
//	hipecvm -hpl mypolicy.hpl -workload zipf -pages 4096 -accesses 200000
//	hipecvm -baseline -workload random ...        # default Mach daemon instead of HiPEC
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hipec/internal/core"
	"hipec/internal/hpl"
	"hipec/internal/policies"
	"hipec/internal/trace"
	"hipec/internal/vm"
	"hipec/internal/workload"
)

func main() {
	var (
		policy   = flag.String("policy", "fifo2", "canned policy: fifo, lru, mru, fifo2, sequential")
		hplFile  = flag.String("hpl", "", "compile and use this HPL policy file instead")
		baseline = flag.Bool("baseline", false, "use the default Mach pageout daemon (no HiPEC)")
		wl       = flag.String("workload", "cyclic", "workload: sequential, cyclic, random, zipf, hotcold")
		pages    = flag.Int64("pages", 2048, "region size in pages")
		pool     = flag.Int("pool", 512, "private pool size (minFrame) in frames")
		accesses = flag.Int("accesses", 100000, "number of memory accesses to drive")
		writes   = flag.Float64("writes", 0.2, "write fraction (random workload)")
		frames   = flag.Int("frames", 16384, "machine size in frames")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		fromDisk = flag.Bool("disk", false, "populate the region on disk (page-ins cost I/O)")
		traceIn  = flag.String("trace", "", "replay this trace file instead of a generated workload")
		traceOut = flag.String("save-trace", "", "save the generated access trace to this file")
		compare  = flag.Bool("compare-opt", false, "also report Belady OPT and exact-LRU fault counts for the same trace")
		report   = flag.Bool("report", false, "print a full kernel state report after the run")
	)
	flag.Parse()

	if err := run(*policy, *hplFile, *baseline, *wl, *pages, *pool, *accesses, *writes, *frames, *seed, *fromDisk, *traceIn, *traceOut, *compare, *report); err != nil {
		fmt.Fprintln(os.Stderr, "hipecvm:", err)
		os.Exit(1)
	}
}

func run(policy, hplFile string, baseline bool, wl string, pages int64, pool, accesses int, writes float64, frames int, seed int64, fromDisk bool, traceIn, traceOut string, compare, report bool) error {
	k := core.New(core.Config{Frames: frames, HiPECDisabled: baseline, StartChecker: !baseline})
	sp := k.NewSpace()

	// Obtain the access trace: from a file or a generator.
	var tr *trace.Trace
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		pages = tr.Pages
		wl = "trace:" + traceIn
	} else {
		var gen workload.Generator
		switch wl {
		case "sequential", "cyclic":
			gen = &workload.Sequential{N: pages}
		case "random":
			gen = workload.NewRandom(pages, writes, seed)
		case "zipf":
			gen = workload.NewZipf(pages, 1.2, seed)
		case "hotcold":
			gen = workload.NewHotCold(pages, 0.1, 0.9, seed)
		default:
			return fmt.Errorf("unknown workload %q", wl)
		}
		tr = trace.FromGenerator(gen, accesses)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if _, err := tr.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hipecvm: wrote %s (%d references)\n", traceOut, tr.Len())
	}

	size := pages * 4096
	var entry *vm.MapEntry
	var container *core.Container
	var err error
	var popErr error
	makeObj := func() *vm.Object {
		obj := k.VM.NewObject(size, !fromDisk)
		if fromDisk {
			if perr := k.VM.Populate(obj, nil); perr != nil && popErr == nil {
				popErr = perr
			}
		}
		return obj
	}
	if baseline {
		entry, err = sp.Map(makeObj(), 0, size)
		if err == nil {
			err = popErr
		}
		if err != nil {
			return err
		}
		fmt.Printf("policy: default Mach pageout daemon (FIFO second chance, shared pool)\n")
	} else {
		var spec *core.Spec
		if hplFile != "" {
			src, rerr := os.ReadFile(hplFile)
			if rerr != nil {
				return rerr
			}
			spec, err = hpl.Translate(hplFile, string(src))
			if err != nil {
				return err
			}
			if spec.MinFrame == 0 {
				spec.MinFrame = pool
			}
		} else {
			spec, err = policies.ByName(policy, pool)
			if err != nil {
				return err
			}
		}
		entry, container, err = k.Map(sp, makeObj(), 0, size, core.WithPolicy(spec))
		if err == nil {
			err = popErr
		}
		if err != nil {
			return err
		}
		fmt.Printf("policy: %s (minFrame %d)\n", spec.Name, spec.MinFrame)
	}
	fmt.Printf("workload: %s over %d pages, %d accesses\n", wl, pages, tr.Len())

	start := k.Clock.Now()
	faults, err := trace.Replay(sp, entry, tr)
	if err != nil {
		return err
	}
	elapsed := time.Duration(k.Clock.Now().Sub(start))

	fmt.Printf("\naccesses:        %d\n", sp.Stats().Accesses)
	fmt.Printf("faults:          %d (%.2f%%)\n", faults, 100*float64(faults)/float64(sp.Stats().Accesses))
	fmt.Printf("page-ins:        %d\n", sp.Stats().PageIns)
	fmt.Printf("page-outs:       %d\n", k.VM.Stats().PageOuts)
	fmt.Printf("virtual elapsed: %v\n", elapsed)
	if container != nil {
		fmt.Printf("policy commands: %d (%.1f per fault)\n", container.Stats().Commands,
			float64(container.Stats().Commands)/float64(max64(1, container.Stats().Activations)))
		if container.State() != core.StateActive {
			fmt.Printf("CONTAINER TERMINATED: %s\n", container.TerminationReason())
		}
	}
	if report {
		fmt.Printf("\n%s", k.Report())
	}
	if compare {
		st := trace.Analyze(tr)
		fmt.Printf("\ntrace: %d refs over %d unique pages (reuse p50=%d p90=%d)\n",
			st.References, st.UniquePages, st.ReuseP50, st.ReuseP90)
		fmt.Printf("exact LRU  @%d frames: %d faults\n", pool, trace.LRU(tr, pool))
		fmt.Printf("Belady OPT @%d frames: %d faults (no policy can do better)\n", pool, trace.OPT(tr, pool))
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
