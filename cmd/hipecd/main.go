// Hipecd is the HiPEC cache daemon: a realtime kernel with a real page
// store, served over the wire protocol on a TCP listener. Clients connect
// with hipec.Dial (or anything speaking internal/wire) and drive the typed
// command surface — open regions under HPL policies, read/write/touch
// pages, pull stats — while the server batches each connection's pipeline
// into single command-loop hops.
//
// The backing store is selected by kind: -store file (default) is the
// slot-file store, tiered layers an in-memory fast tier over a file,
// sharded fans pages across shard files, mmap maps the backing file, and
// mem keeps everything in memory. -store-path names the backing file
// (or the stem shard files derive from); empty means fresh temp files,
// removed on exit.
//
// Run with: go run ./cmd/hipecd -addr 127.0.0.1:7070 -store tiered
// Then point examples/netcache at it: go run ./examples/netcache -addr 127.0.0.1:7070
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"hipec"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	storeKind := flag.String("store", "file", "store backend: file, mem, tiered, sharded, mmap")
	storePath := flag.String("store-path", "", "backing store file or stem (default: fresh temp files, removed on exit)")
	pageSize := flag.Int("pagesize", 4096, "page size in bytes")
	frames := flag.Int("frames", 4096, "physical memory size in frames")
	maxConns := flag.Int("max-conns", 64, "max concurrently served connections")
	batchWindow := flag.Duration("batch-window", 0, "linger this long for more requests before submitting a non-full batch")
	flag.Parse()

	store, err := hipec.OpenStore(*storeKind, *storePath, *pageSize)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	opts := []hipec.ServeOption{
		hipec.WithFrames(*frames),
		hipec.WithMaxConns(*maxConns),
	}
	if *batchWindow > 0 {
		opts = append(opts, hipec.WithBatchWindow(*batchWindow))
	}
	srv, err := hipec.Serve(*addr, store, opts...)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("hipecd: serving %s store on %s (%d frames x %d B pages)",
		store.Label(), srv.Addr(), *frames, *pageSize)

	// Serve until interrupted, then drain connections and close the loop.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("hipecd: %v: shutting down", s)
	srv.Close()
}
