// Command hipeclint runs the HPL static verifier (internal/hpl/verify)
// over policy files without loading them into a kernel.
//
// Usage:
//
//	hipeclint policy.hpl other.hpb ...
//
// Each argument is either HPL source or a hipecc binary (detected by the
// "HPEC" container magic). Source files are compiled first, so the verifier
// sees the full operand contract; binaries carry no operand table, so the
// verifier runs in kind-inference mode and reports conflicting uses
// instead of authoritative kind errors.
//
// Diagnostics print one per line as
//
//	file: severity: event <name> CC=<n>: message [code]
//
// and the exit status is 1 when any file has an error-severity finding
// (the same findings the in-kernel checker rejects at registration),
// 0 otherwise.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"hipec/internal/core"
	"hipec/internal/hpl"
	"hipec/internal/hpl/verify"
)

func main() {
	var (
		minFrame = flag.Int("minframe", 64, "minFrame assumed when compiling source policies")
		ext      = flag.Bool("ext", true, "allow extension opcodes (Migrate/Age) in binary policies")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hipeclint [-minframe N] [-ext=false] policy.hpl ...")
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		diags, err := lintFile(path, *minFrame, *ext)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hipeclint: %s: %v\n", path, err)
			bad = true
			continue
		}
		for _, d := range diags {
			fmt.Printf("%s: %s\n", path, d)
		}
		if verify.HasErrors(diags) {
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

// lintFile verifies one policy file, sniffing the hipecc binary container
// magic to decide between source and binary mode.
func lintFile(path string, minFrame int, ext bool) ([]verify.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if isBinary(data) {
		return lintBinary(path, data, ext)
	}
	return lintSource(path, string(data), minFrame)
}

func isBinary(data []byte) bool {
	return len(data) >= 4 && binary.LittleEndian.Uint32(data) == hpl.BinaryMagic
}

// lintSource compiles HPL source and verifies it with the full operand
// contract a registering kernel would see.
func lintSource(path, src string, minFrame int) ([]verify.Diagnostic, error) {
	spec, err := hpl.Translate(path, src)
	if err != nil {
		return nil, err
	}
	if spec.MinFrame == 0 {
		spec.MinFrame = minFrame
	}
	u, err := core.UnitForSpec(spec)
	if err != nil {
		return nil, err
	}
	return verify.Analyze(u), nil
}

// lintBinary decodes a hipecc binary and verifies it in kind-inference
// mode (the container format carries no operand declarations).
func lintBinary(path string, data []byte, ext bool) ([]verify.Diagnostic, error) {
	events, err := hpl.DecodeBinaryBytes(data)
	if err != nil {
		return nil, err
	}
	u := verify.NewUnit(path)
	u.Events = events
	u.Extensions = ext
	return verify.Analyze(u), nil
}
