package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hipec/internal/hpl"
	"hipec/internal/hpl/verify"
	"hipec/internal/policies"
)

const cleanSource = `
minframe = 4
event PageFault() {
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() {
    return
}
`

const cycleSource = `
minframe = 4
event PageFault() {
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() {
    return
}
event A() {
    activate B()
}
event B() {
    activate A()
}
`

func writeTemp(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintSourceClean(t *testing.T) {
	path := writeTemp(t, "clean.hpl", []byte(cleanSource))
	diags, err := lintFile(path, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if verify.HasErrors(diags) {
		t.Fatalf("clean source produced errors: %v", diags)
	}
}

func TestLintSourceCycle(t *testing.T) {
	path := writeTemp(t, "cycle.hpl", []byte(cycleSource))
	diags, err := lintFile(path, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Code == verify.CodeActivateCycle && d.Severity == verify.SevError {
			found = true
		}
	}
	if !found {
		t.Fatalf("want activate-cycle error, got %v", diags)
	}
}

// TestLintBinaryRoundTrip: a canned policy encoded with hipecc's binary
// container must lint clean in kind-inference mode.
func TestLintBinaryRoundTrip(t *testing.T) {
	spec, err := policies.ByName("fifo2", 16)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := hpl.EncodeBinary(&buf, spec); err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, "fifo2.hpb", buf.Bytes())
	diags, err := lintFile(path, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if verify.HasErrors(diags) {
		t.Fatalf("binary round trip produced errors: %v", diags)
	}
}

// TestLintBinarySniff: garbage that is not a hipecc container must be
// treated as (unparseable) source, not crash the binary decoder.
func TestLintBinarySniff(t *testing.T) {
	path := writeTemp(t, "garbage.hpl", []byte("not a policy"))
	if _, err := lintFile(path, 64, true); err == nil {
		t.Fatal("garbage source must fail to translate")
	}
}
