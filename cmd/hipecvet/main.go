// Command hipecvet runs the repo's custom static-analysis passes
// (internal/analyzers) over the source tree: wall-clock and global-rand
// bans in simulation packages, typed-error discipline in kernel packages,
// and the no-package-level-counters rule. It is the CI companion of the
// HPL policy verifier — the same idea pointed at the Go sources.
//
// Usage:
//
//	hipecvet [repo-root]
//
// Exit status is 1 when any finding is reported.
package main

import (
	"fmt"
	"os"

	"hipec/internal/analyzers"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := analyzers.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hipecvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
