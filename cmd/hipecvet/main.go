// Command hipecvet runs the repo's custom static-analysis passes
// (internal/analyzers) over the source tree: the type-aware engine proves
// the determinism rules (wallclock, globalrand), the substrate and client
// seams (simclock, loopseam), the typed-error and no-global-state
// discipline (errtype, globalstate), the single-writer actor invariants
// (loopcapture, blockinloop), the hot-path zero-allocation contract
// (mapinloop, hotalloc) and the wire protocol's refuse-before-allocate rule
// (wiretaint). It is the CI companion of the HPL policy verifier — the same
// idea pointed at the Go sources.
//
// Usage:
//
//	hipecvet [-json] [repo-root]
//
// With -json, findings are written to stdout as a JSON array of
// {file, line, col, pass, msg} objects (an empty array when clean) — the
// CI job uploads it as an artifact on failure. Exit status is 1 when any
// finding is reported, 2 on analysis errors.
//
// Findings are suppressed inline with
//
//	//hipec:vet-ignore <pass>[,<pass>] -- <reason>
//
// on the offending line or the line above; the reason is mandatory and an
// unused suppression is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hipec/internal/analyzers"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	findings, err := analyzers.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hipecvet:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if findings == nil {
			findings = []analyzers.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "hipecvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
