// Command replaydiff compares two kernel event logs (experiments
// -event-log, or any kevent.LogWriter capture) and pinpoints the first
// event where the runs diverge.
//
// The simulated kernel is deterministic: the same workload must produce the
// same event stream, event for event. When a refactor changes behaviour,
// the final report only shows that counters moved; the event streams show
// *where* — the first fault handled differently, the first eviction picked
// from the wrong queue. replaydiff turns "the numbers differ" into "event
// #1234 diverged: expected fault at 0x40000, got daemon.balance".
//
// Usage:
//
//	replaydiff A.kevlog B.kevlog
//
// Exit status 0 when the logs are identical, 1 on divergence, 2 on usage
// or parse errors. On divergence the report shows the preceding context
// and both sides' next events.
package main

import (
	"fmt"
	"os"

	"hipec/internal/kevent"
)

const contextEvents = 5

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: replaydiff A.kevlog B.kevlog\n")
		os.Exit(2)
	}
	a := readLog(os.Args[1])
	b := readLog(os.Args[2])

	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			report(a, b, i)
			os.Exit(1)
		}
	}
	if len(a) != len(b) {
		fmt.Printf("logs agree on the first %d events, then lengths diverge: %s has %d, %s has %d\n",
			n, os.Args[1], len(a), os.Args[2], len(b))
		longer, name := a, os.Args[1]
		if len(b) > len(a) {
			longer, name = b, os.Args[2]
		}
		fmt.Printf("first extra event in %s:\n  %s\n", name, longer[n].Format(int64(n)))
		os.Exit(1)
	}
	fmt.Printf("identical: %d events\n", len(a))
}

func readLog(path string) []kevent.Event {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replaydiff: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	evs, err := kevent.ReadLog(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replaydiff: %s: %v\n", path, err)
		os.Exit(2)
	}
	return evs
}

func report(a, b []kevent.Event, i int) {
	fmt.Printf("first divergent event: #%d\n", i)
	start := i - contextEvents
	if start < 0 {
		start = 0
	}
	if start < i {
		fmt.Printf("shared context:\n")
		for j := start; j < i; j++ {
			fmt.Printf("  %s\n", a[j].Format(int64(j)))
		}
	}
	fmt.Printf("%s:\n  %s\n", os.Args[1], a[i].Format(int64(i)))
	fmt.Printf("%s:\n  %s\n", os.Args[2], b[i].Format(int64(i)))
}
