// Command benchguard compares two experiments -bench-json reports and
// fails (exit 1) when the new one regresses the kernel's performance
// contract. It is the CI gate behind the BENCH_*.json series:
//
//	benchguard -old BENCH_0004.json -new bench.json
//
// Checks, in order:
//
//   - executor ns/command must not regress more than -max-regress-pct
//     (default 10%) against the old report;
//   - the executor hot path must stay allocation-free;
//   - when the new report carries the data-plane fields, the resident-hit
//     path must stay allocation-free and the flat page table must beat the
//     map-backed reference mode by at least -min-hit-improvement-pct
//     (default 25%);
//   - when the new report carries the sharded fields, the multi-kernel
//     faults/sec headline must be present and positive.
//
// Fields absent from the old report are skipped, so the guard works
// across report-schema growth: comparing against a pre-data-plane
// baseline still gates ns/command and allocations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type report map[string]float64

func load(path string) (report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r := report{}
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			r[k] = f
		}
	}
	return r, nil
}

func main() {
	var (
		oldPath    = flag.String("old", "", "baseline bench JSON")
		newPath    = flag.String("new", "", "candidate bench JSON")
		maxRegress = flag.Float64("max-regress-pct", 10, "max allowed ns/command regression, percent")
		minHitImp  = flag.Float64("min-hit-improvement-pct", 25, "min required flat-vs-sparse resident-hit improvement, percent")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -old and -new are required")
		os.Exit(2)
	}
	oldR, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	newR, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL: "+format+"\n", args...)
		failed = true
	}
	pass := func(format string, args ...any) {
		fmt.Printf("benchguard: ok: "+format+"\n", args...)
	}

	// ns/command regression gate.
	oldNs, newNs := oldR["executor_ns_per_command"], newR["executor_ns_per_command"]
	switch {
	case oldNs <= 0 || newNs <= 0:
		fail("executor_ns_per_command missing (old=%v new=%v)", oldNs, newNs)
	case newNs > oldNs*(1+*maxRegress/100):
		fail("executor ns/command regressed %.1f%% (%.2f -> %.2f, limit %.0f%%)",
			100*(newNs-oldNs)/oldNs, oldNs, newNs, *maxRegress)
	default:
		pass("executor ns/command %.2f -> %.2f (%+.1f%%, limit +%.0f%%)",
			oldNs, newNs, 100*(newNs-oldNs)/oldNs, *maxRegress)
	}

	// Allocation gates: the hot paths must stay at zero.
	if a, ok := newR["executor_allocs_per_run"]; !ok || a != 0 {
		fail("executor_allocs_per_run = %v, want 0", a)
	} else {
		pass("executor hot path allocation-free")
	}
	if a, ok := newR["resident_hit_allocs_per_op"]; ok {
		if a != 0 {
			fail("resident_hit_allocs_per_op = %v, want 0", a)
		} else {
			pass("resident-hit path allocation-free")
		}
	}

	// Data-plane gate: flat table must beat the map-backed reference.
	if imp, ok := newR["resident_hit_improvement_pct"]; ok {
		if imp < *minHitImp {
			fail("resident-hit improvement %.1f%% below required %.0f%% (flat %.2fns vs sparse %.2fns)",
				imp, *minHitImp, newR["resident_hit_ns_flat"], newR["resident_hit_ns_sparse"])
		} else {
			pass("resident-hit flat beats sparse by %.1f%% (>= %.0f%%)", imp, *minHitImp)
		}
	}

	// Scale gate: the sharded headline must exist and be positive.
	if fps, ok := newR["faults_per_sec"]; ok {
		if fps <= 0 {
			fail("faults_per_sec = %v, want > 0", fps)
		} else {
			pass("multi-kernel throughput %.0f faults/sec over %d shards",
				fps, int(newR["shards"]))
		}
	}

	if failed {
		os.Exit(1)
	}
}
