package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hipec/internal/hpl"
)

func TestLoadSpecBuiltin(t *testing.T) {
	spec, err := loadSpec("mru", 32, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if spec.MinFrame != 32 {
		t.Fatalf("MinFrame = %d", spec.MinFrame)
	}
}

func TestLoadSpecUnknownBuiltin(t *testing.T) {
	if _, err := loadSpec("nope", 8, "", nil); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

func TestLoadSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.hpl")
	src := `
minframe = 8
event PageFault() {
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() { return }
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := loadSpec("", 0, "mypolicy", []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "mypolicy" || spec.MinFrame != 8 {
		t.Fatalf("spec = %q/%d", spec.Name, spec.MinFrame)
	}
}

func TestLoadSpecBadArgs(t *testing.T) {
	if _, err := loadSpec("", 0, "", nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatal("missing-file case not reported")
	}
	if _, err := loadSpec("", 0, "", []string{"/nonexistent/file.hpl"}); err == nil {
		t.Fatal("unreadable file accepted")
	}
}

func TestWriteBinaryRoundTrip(t *testing.T) {
	spec, err := loadSpec("fifo2", 16, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.bin")
	if err := writeBinary(path, spec); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := hpl.DecodeBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(spec.Events) {
		t.Fatalf("events = %d, want %d", len(events), len(spec.Events))
	}
}
