// Command hipecc is the HiPEC pseudo-code translator (§4.3.4 of the paper)
// as a stand-alone program: it compiles an HPL policy into HiPEC command
// streams and prints the Table-2-style listing, or an encoded binary dump.
//
// Usage:
//
//	hipecc [-o out.bin] [-list] policy.hpl
//	hipecc -builtin mru -minframe 1024        # show a canned policy
//
// With -list (default) the annotated disassembly is written to stdout; with
// -o the raw little-endian command words of each event are concatenated
// (preceded by a one-word event count and per-event word counts) for
// loading elsewhere.
//
// With -analyze the compiled policy is run through the static verifier
// (internal/hpl/verify) before any output is produced; diagnostics go to
// stderr and error-severity findings fail the compile, exactly as the
// in-kernel checker would reject the policy at registration.
package main

import (
	"flag"
	"fmt"
	"os"

	"hipec/internal/core"
	"hipec/internal/hpl"
	"hipec/internal/hpl/verify"
	"hipec/internal/policies"
)

func main() {
	var (
		out      = flag.String("o", "", "write encoded command words to this file")
		list     = flag.Bool("list", true, "print the annotated listing")
		analyze  = flag.Bool("analyze", false, "run the static verifier; error diagnostics fail the compile")
		builtin  = flag.String("builtin", "", "show a canned policy instead of compiling a file (fifo, lru, mru, fifo2, sequential)")
		minFrame = flag.Int("minframe", 64, "minFrame for -builtin policies")
		name     = flag.String("name", "", "policy name (defaults to the file name)")
	)
	flag.Parse()

	spec, err := loadSpec(*builtin, *minFrame, *name, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hipecc:", err)
		os.Exit(1)
	}
	if *analyze {
		u, err := core.UnitForSpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hipecc:", err)
			os.Exit(1)
		}
		diags := verify.Analyze(u)
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "hipecc: %s: %s\n", spec.Name, d)
		}
		if verify.HasErrors(diags) {
			fmt.Fprintln(os.Stderr, "hipecc: policy rejected by verifier")
			os.Exit(1)
		}
	}
	if *list {
		fmt.Print(hpl.DisassembleSpec(spec))
	}
	if *out != "" {
		if err := writeBinary(*out, spec); err != nil {
			fmt.Fprintln(os.Stderr, "hipecc:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hipecc: wrote %s\n", *out)
	}
}

func loadSpec(builtin string, minFrame int, name string, args []string) (*core.Spec, error) {
	if builtin != "" {
		return policies.ByName(builtin, minFrame)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: hipecc [-o out.bin] policy.hpl (or -builtin <name>)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = args[0]
	}
	return hpl.Translate(name, string(src))
}

// writeBinary emits the shared hipecc binary container (see
// internal/hpl/binary.go).
func writeBinary(path string, spec *core.Spec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return hpl.EncodeBinary(f, spec)
}
